#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tsch/hopping.h"

namespace wsan::sim {

namespace {

/// A transmission as laid out for fast slot iteration.
struct slot_entry {
  tsch::transmission tx;
  offset_t offset = k_invalid_offset;
  bool reuse_cell = false;  ///< scheduled cell holds >= 2 transmissions
};

/// Per-run accumulation of one link's attempts/successes by slot kind.
struct link_run_counts {
  int reuse_attempts = 0;
  int reuse_successes = 0;
  int cf_attempts = 0;
  int cf_successes = 0;
  double loss_internal = 0.0;
  double loss_external = 0.0;
};

}  // namespace

void validate_sim_config(const sim_config& config) {
  WSAN_REQUIRE(config.runs >= 1, "need at least one run");
  WSAN_REQUIRE(config.probes_per_run >= 0,
               "probe count must be non-negative");
  WSAN_REQUIRE(config.interferer_start_run >= 0,
               "interferer start run must be non-negative");
  const auto valid_sigma = [](double sigma) {
    return std::isfinite(sigma) && sigma >= 0.0;
  };
  WSAN_REQUIRE(valid_sigma(config.calibration_drift_sigma_db),
               "calibration drift sigma must be finite and non-negative");
  WSAN_REQUIRE(valid_sigma(config.maintained_drift_sigma_db),
               "maintained drift sigma must be finite and non-negative");
  WSAN_REQUIRE(valid_sigma(config.intermittent_sigma_db),
               "intermittent sigma must be finite and non-negative");
  WSAN_REQUIRE(valid_sigma(config.temporal_fading_sigma_db),
               "temporal fading sigma must be finite and non-negative");
  WSAN_REQUIRE(std::isfinite(config.intermittent_fraction) &&
                   config.intermittent_fraction >= 0.0 &&
                   config.intermittent_fraction <= 1.0,
               "intermittent fraction must be in [0, 1]");
  WSAN_REQUIRE(std::isfinite(config.capture_threshold_db),
               "capture threshold must be finite");
  WSAN_REQUIRE(std::isfinite(config.capture_transition_db) &&
                   config.capture_transition_db >= 0.0,
               "capture transition width must be finite and non-negative");
  validate_fault_plan(config.faults);
}

sim_result run_simulation(const topo::topology& topo,
                          const tsch::schedule& sched,
                          const std::vector<flow::flow>& flows,
                          const std::vector<channel_t>& channels,
                          const sim_config& config) {
  OBS_SPAN("sim.run_simulation");
  WSAN_REQUIRE(!flows.empty(), "flow set must be non-empty");
  WSAN_REQUIRE(!channels.empty(), "channel set must be non-empty");
  WSAN_REQUIRE(static_cast<int>(channels.size()) == sched.num_offsets(),
               "channel list size must equal the schedule's offset count");
  validate_sim_config(config);

  const slot_t hp = sched.num_slots();

  // Flatten the schedule for slot-major iteration.
  std::vector<std::vector<slot_entry>> by_slot(
      static_cast<std::size_t>(hp));
  for (slot_t s = 0; s < hp; ++s) {
    for (offset_t c = 0; c < sched.num_offsets(); ++c) {
      const auto& cell = sched.cell(s, c);
      for (const auto& tx : cell) {
        WSAN_REQUIRE(tx.flow >= 0 &&
                         tx.flow < static_cast<flow_id>(flows.size()),
                     "schedule references an unknown flow");
        by_slot[static_cast<std::size_t>(s)].push_back(
            slot_entry{tx, c, cell.size() >= 2});
      }
    }
  }

  // Distinct links appearing in the schedule: probed by neighbor
  // discovery and maintained (fresh statistics) by health reports.
  std::vector<link_key> schedule_links;
  std::set<std::pair<node_id, node_id>> maintained_pairs;
  {
    std::map<link_key, bool> seen;
    for (const auto& p : sched.placements()) {
      seen[link_key{p.tx.sender, p.tx.receiver}] = true;
      maintained_pairs.insert({std::min(p.tx.sender, p.tx.receiver),
                               std::max(p.tx.sender, p.tx.receiver)});
    }
    if (config.probes_per_run > 0)
      for (const auto& [key, unused] : seen) schedule_links.push_back(key);
  }

  phy::capture_params capture;
  capture.capture_threshold_db = config.capture_threshold_db;
  capture.transition_width_db = config.capture_transition_db;
  capture.link = topo.link_model();

  interference_field field(topo, config.interferers, config.seed ^ 0x5eedULL);
  rng gen(config.seed);
  fault_state faults(config.faults, topo.num_nodes());

  // Temporal fading: deterministic per (unordered pair, channel, run).
  // Fast multipath variation is frequency-selective, which is exactly
  // why TSCH hops channels: a retry on a different channel sees an
  // independent fade, so engineered links with retries ride through it,
  // while a single shared cell pinned to a faded channel does not.
  const auto temporal_fade_db = [&](int run, node_id a, node_id b,
                                    channel_t ch) {
    if (config.temporal_fading_sigma_db <= 0.0) return 0.0;
    const auto lo = static_cast<std::uint64_t>(std::min(a, b));
    const auto hi = static_cast<std::uint64_t>(std::max(a, b));
    std::uint64_t state = config.seed ^ (0x9e3779b97f4a7c15ULL +
                                         static_cast<std::uint64_t>(run));
    state ^= splitmix64(state) + (lo << 32 | hi);
    state ^= splitmix64(state) + static_cast<std::uint64_t>(ch);
    rng pair_gen(splitmix64(state));
    return pair_gen.normal(0.0, config.temporal_fading_sigma_db);
  };

  // Calibration drift: static per (unordered pair, channel) offset
  // between the measured topology (which produced the schedule's graphs)
  // and the RF world the schedule actually runs in.
  const auto drift_db = [&](node_id a, node_id b, channel_t ch) {
    const node_id lo_id = std::min(a, b);
    const node_id hi_id = std::max(a, b);
    const bool maintained = maintained_pairs.count({lo_id, hi_id}) > 0;
    const auto lo = static_cast<std::uint64_t>(lo_id);
    const auto hi = static_cast<std::uint64_t>(hi_id);
    std::uint64_t pair_state = config.seed ^ 0xd51f7ULL;
    pair_state ^= splitmix64(pair_state) + (lo << 32 | hi);
    std::uint64_t state = pair_state;
    state ^= splitmix64(state) + static_cast<std::uint64_t>(ch);
    rng chan_gen(splitmix64(state));
    double sigma = config.calibration_drift_sigma_db;
    if (maintained) {
      // Used links are re-measured every health-report epoch; a link
      // that went intermittent would be rerouted, so in steady state
      // the maintained population only sees small drift.
      sigma = config.maintained_drift_sigma_db;
    } else {
      // Intermittence is a property of the pair, not of one channel.
      rng pair_gen(splitmix64(pair_state));
      if (pair_gen.uniform01() < config.intermittent_fraction)
        sigma = config.intermittent_sigma_db;
    }
    if (sigma <= 0.0) return 0.0;
    return chan_gen.normal(0.0, sigma);
  };

  // Effective RSSI at experiment time.
  const auto live_rssi = [&](int run, node_id sender, node_id receiver,
                             channel_t ch) {
    return topo.rssi_dbm(sender, receiver, ch) +
           drift_db(sender, receiver, ch) +
           temporal_fade_db(run, sender, receiver, ch);
  };

  // Packet progress per (flow, instance): index of the next route link
  // awaiting delivery; -1 marks a dead instance (both attempts failed).
  std::vector<std::vector<int>> progress(flows.size());
  std::vector<long long> delivered(flows.size(), 0);
  std::vector<long long> released(flows.size(), 0);

  sim_result result;
  result.energy.per_node_mj.assign(
      static_cast<std::size_t>(topo.num_nodes()), 0.0);
  const auto& em = config.energy;
  auto& energy = result.energy;

  for (int run = 0; run < config.runs; ++run) {
    faults.begin_run(run);
    // Reset per-run packet state; every instance releases anew.
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      const int instances = flows[fi].instances_in(hp);
      progress[fi].assign(static_cast<std::size_t>(instances), 0);
      released[fi] += instances;
    }
    std::map<link_key, link_run_counts> run_counts;

    for (slot_t s = 0; s < hp; ++s) {
      const auto& entries = by_slot[static_cast<std::size_t>(s)];
      if (entries.empty()) continue;
      const tsch::asn_t asn =
          static_cast<tsch::asn_t>(run) * hp + s;

      // Which scheduled transmissions actually fire: the packet must be
      // waiting at the link's sender (primary failed -> retry fires;
      // primary succeeded -> retry slot stays silent).
      std::vector<const slot_entry*> active;
      std::vector<channel_t> active_channel;
      for (const auto& entry : entries) {
        const auto fi = static_cast<std::size_t>(entry.tx.flow);
        const int prog = progress[fi][static_cast<std::size_t>(
            entry.tx.instance)];
        // A crashed sender is silent; a crashed receiver's radio is off
        // (no guard window, no energy).
        const bool sender_crashed = faults.node_down(entry.tx.sender);
        if (prog != entry.tx.link_index || sender_crashed) {
          // Nothing on the air for this entry: the sender either knows
          // its queue is empty and sleeps, or is dead. An alive receiver
          // must still open its guard window.
          if (!faults.node_down(entry.tx.receiver)) {
            energy.per_node_mj[static_cast<std::size_t>(
                entry.tx.receiver)] += em.idle_listen_mj;
            ++energy.idle_listens;
          }
          continue;  // done, dead, past, or crashed
        }
        active.push_back(&entry);
        active_channel.push_back(
            tsch::physical_channel(asn, entry.offset, channels));
      }
      if (active.empty()) continue;

      std::vector<bool> interferers_active = field.sample_active(gen);
      if (run < config.interferer_start_run)
        interferers_active.assign(interferers_active.size(), false);

      // Evaluate receptions against the snapshot of concurrent activity.
      std::vector<bool> success(active.size(), false);
      for (std::size_t i = 0; i < active.size(); ++i) {
        const auto& tx = active[i]->tx;
        const channel_t ch = active_channel[i];
        const double signal = live_rssi(run, tx.sender, tx.receiver, ch);
        std::vector<double> internal;
        for (std::size_t j = 0; j < active.size(); ++j) {
          if (j == i || active_channel[j] != ch) continue;
          internal.push_back(
              live_rssi(run, active[j]->tx.sender, tx.receiver, ch));
        }
        std::vector<double> external;
        for (int k = 0; k < field.num_interferers(); ++k) {
          if (!interferers_active[static_cast<std::size_t>(k)]) continue;
          if (const auto power = field.power_at(k, tx.receiver, ch))
            external.push_back(*power);
        }
        std::vector<double> combined = internal;
        combined.insert(combined.end(), external.begin(), external.end());
        const double p =
            phy::reception_probability(capture, signal, combined);
        // A crashed receiver or failed link loses the packet regardless
        // of the channel (the sender, not knowing, transmits anyway and
        // still interferes with concurrent receptions). The Bernoulli
        // draw is consumed either way so a fault does not reshuffle the
        // sample path of unrelated links within the slot.
        const bool faulted_rx = faults.node_down(tx.receiver) ||
                                faults.link_down(tx.sender, tx.receiver);
        success[i] = gen.bernoulli(p) && !faulted_rx;

        // Ground-truth attribution (counterfactual reception). Fault
        // losses are neither internal nor external interference.
        auto& counts =
            run_counts[link_key{tx.sender, tx.receiver}];
        if (!internal.empty() && !faulted_rx) {
          counts.loss_internal +=
              phy::reception_probability(capture, signal, external) - p;
        }
        if (!external.empty() && !faulted_rx) {
          counts.loss_external +=
              phy::reception_probability(capture, signal, internal) - p;
        }
      }

      // Apply outcomes: advance or (on a failed retry) kill the packet.
      for (std::size_t i = 0; i < active.size(); ++i) {
        const auto& entry = *active[i];
        const auto& tx = entry.tx;
        const auto fi = static_cast<std::size_t>(tx.flow);
        auto& prog =
            progress[fi][static_cast<std::size_t>(tx.instance)];

        auto& counts = run_counts[link_key{tx.sender, tx.receiver}];
        if (entry.reuse_cell) {
          ++counts.reuse_attempts;
          counts.reuse_successes += success[i] ? 1 : 0;
        } else {
          ++counts.cf_attempts;
          counts.cf_successes += success[i] ? 1 : 0;
        }

        // Energy: sender transmits and listens for the ACK; an alive
        // receiver listens for the packet and ACKs only what it decoded
        // (a crashed receiver's radio draws nothing).
        energy.per_node_mj[static_cast<std::size_t>(tx.sender)] +=
            em.tx_packet_mj + em.rx_ack_mj;
        if (!faults.node_down(tx.receiver)) {
          energy.per_node_mj[static_cast<std::size_t>(tx.receiver)] +=
              em.rx_packet_mj + (success[i] ? em.tx_ack_mj : 0.0);
        }
        ++energy.data_transmissions;

        if (success[i]) {
          ++prog;
          if (prog == static_cast<int>(flows[fi].route.size()))
            ++delivered[fi];
        }
        // A failed final attempt leaves prog at the link; later slots of
        // this instance reference higher link indexes and stay silent,
        // which is exactly the dedicated-slot semantics of source
        // routing. (The retry for this link, if still pending, fires.)
      }
    }

    // Neighbor-discovery probes: contention-free broadcasts that hop
    // across the channel list, exposed only to external interference.
    for (const auto& link : schedule_links) {
      if (faults.node_down(link.sender)) continue;  // dead nodes are mute
      const bool probe_faulted = faults.node_down(link.receiver) ||
                                 faults.link_down(link.sender,
                                                  link.receiver);
      auto& counts = run_counts[link];
      for (int probe = 0; probe < config.probes_per_run; ++probe) {
        const channel_t ch = channels[static_cast<std::size_t>(
            gen.uniform_int(0,
                            static_cast<std::int64_t>(channels.size()) -
                                1))];
        const double signal = live_rssi(run, link.sender, link.receiver, ch);
        std::vector<double> interference;
        std::vector<bool> probe_interferers = field.sample_active(gen);
        if (run < config.interferer_start_run)
          probe_interferers.assign(probe_interferers.size(), false);
        for (int k = 0; k < field.num_interferers(); ++k) {
          if (!probe_interferers[static_cast<std::size_t>(k)]) continue;
          if (const auto power = field.power_at(k, link.receiver, ch))
            interference.push_back(*power);
        }
        const double p =
            phy::reception_probability(capture, signal, interference);
        ++counts.cf_attempts;
        counts.cf_successes += (gen.bernoulli(p) && !probe_faulted) ? 1 : 0;
        energy.per_node_mj[static_cast<std::size_t>(link.sender)] +=
            em.tx_packet_mj;  // broadcast: no ACK
        if (!faults.node_down(link.receiver)) {
          energy.per_node_mj[static_cast<std::size_t>(link.receiver)] +=
              em.rx_packet_mj;
        }
        ++energy.data_transmissions;
        if (!interference.empty() && !probe_faulted) {
          counts.loss_external +=
              phy::reception_probability(capture, signal, {}) - p;
        }
      }
    }

    for (const auto& [key, counts] : run_counts) {
      if (counts.reuse_attempts == 0 && counts.cf_attempts == 0) continue;
      // Health reports are the sender's to deliver: a crashed or
      // suppressed sender's statistics never reach the manager.
      if (faults.reports_withheld(key.sender)) continue;
      auto& obs = result.links[key];
      if (counts.reuse_attempts > 0) {
        obs.reuse_samples.emplace_back(
            run, static_cast<double>(counts.reuse_successes) /
                     static_cast<double>(counts.reuse_attempts));
        obs.reuse_attempts += counts.reuse_attempts;
        obs.reuse_successes += counts.reuse_successes;
      }
      if (counts.cf_attempts > 0) {
        obs.cf_samples.emplace_back(
            run, static_cast<double>(counts.cf_successes) /
                     static_cast<double>(counts.cf_attempts));
        obs.cf_attempts += counts.cf_attempts;
        obs.cf_successes += counts.cf_successes;
      }
      obs.expected_loss_internal += counts.loss_internal;
      obs.expected_loss_external += counts.loss_external;
    }
  }

  for (double mj : result.energy.per_node_mj)
    result.energy.total_mj += mj;

  result.flow_pdr.resize(flows.size());
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    result.flow_pdr[fi] =
        released[fi] == 0 ? 1.0
                          : static_cast<double>(delivered[fi]) /
                                static_cast<double>(released[fi]);
    result.instances_released += released[fi];
    result.instances_delivered += delivered[fi];
  }
  if (wsan::obs::enabled()) {
    wsan::obs::add_counter("sim.simulations");
    wsan::obs::add_counter("sim.runs",
                           static_cast<std::uint64_t>(config.runs));
    wsan::obs::add_counter(
        "sim.data_transmissions",
        static_cast<std::uint64_t>(result.energy.data_transmissions));
    wsan::obs::add_counter(
        "sim.idle_listens",
        static_cast<std::uint64_t>(result.energy.idle_listens));
    wsan::obs::add_counter(
        "sim.instances_released",
        static_cast<std::uint64_t>(result.instances_released));
    wsan::obs::add_counter(
        "sim.instances_delivered",
        static_cast<std::uint64_t>(result.instances_delivered));
  }
  return result;
}

}  // namespace wsan::sim
