#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numbers>
#include <set>

#include "common/batch_rng.h"
#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "phy/channel.h"
#include "phy/sigmoid.h"
#include "tsch/hopping.h"

namespace wsan::sim {

namespace {

/// A transmission as laid out for fast slot iteration.
struct slot_entry {
  tsch::transmission tx;
  offset_t offset = k_invalid_offset;
  bool reuse_cell = false;  ///< scheduled cell holds >= 2 transmissions
  // Fast-path fields, filled by the engine setup:
  int link = -1;   ///< dense link index over the schedule's distinct links
  int so_mod = 0;  ///< (slot + offset) mod |channels|
};

/// Fast-engine memo state for one (sender, receiver, channel-position)
/// coordinate. Packing the run-invariant base, the epoch-stamped live
/// signal, and the epoch-stamped clean reception probability into one
/// struct keeps a hot-path query (and its miss path) on one or two
/// cache lines instead of six parallel arrays.
struct coord_cache {
  double base = 0.0;  ///< measured RSSI + drift (run-invariant)
  double sig = 0.0;   ///< base + fade, valid when sig_epoch matches
  double p0 = 0.0;    ///< clean PRR, valid when p0_epoch matches
  std::uint32_t sig_epoch = 0;
  std::uint32_t p0_epoch = 0;
  std::uint8_t base_ready = 0;
};

/// Per-run accumulation of one link's attempts/successes by slot kind.
struct link_run_counts {
  int reuse_attempts = 0;
  int reuse_successes = 0;
  int cf_attempts = 0;
  int cf_successes = 0;
  double loss_internal = 0.0;
  double loss_external = 0.0;
};

/// Flattens the schedule for slot-major iteration, validating every
/// transmission's indices up front: the inner loop indexes
/// progress[flow][instance], flows[flow].route[link_index], and the
/// per-node energy array with these values, so a malformed schedule must
/// fail loudly here instead of corrupting memory later.
std::vector<std::vector<slot_entry>> flatten_schedule(
    const tsch::schedule& sched, const std::vector<flow::flow>& flows,
    int num_nodes, int num_channels) {
  const slot_t hp = sched.num_slots();
  std::vector<std::vector<slot_entry>> by_slot(
      static_cast<std::size_t>(hp));
  for (slot_t s = 0; s < hp; ++s) {
    for (offset_t c = 0; c < sched.num_offsets(); ++c) {
      const auto& cell = sched.cell(s, c);
      for (const auto& tx : cell) {
        WSAN_REQUIRE(tx.flow >= 0 &&
                         tx.flow < static_cast<flow_id>(flows.size()),
                     "schedule references an unknown flow");
        const auto& f = flows[static_cast<std::size_t>(tx.flow)];
        WSAN_REQUIRE(tx.instance >= 0 && tx.instance < f.instances_in(hp),
                     "schedule transmission has an out-of-range instance");
        WSAN_REQUIRE(tx.link_index >= 0 &&
                         tx.link_index <
                             static_cast<int>(f.route.size()),
                     "schedule transmission has an out-of-range route "
                     "link index");
        WSAN_REQUIRE(tx.sender >= 0 && tx.sender < num_nodes &&
                         tx.receiver >= 0 && tx.receiver < num_nodes,
                     "schedule transmission references a node outside "
                     "the topology");
        slot_entry entry{tx, c, cell.size() >= 2, -1, 0};
        entry.so_mod = static_cast<int>((s + c) % num_channels);
        by_slot[static_cast<std::size_t>(s)].push_back(entry);
      }
    }
  }
  return by_slot;
}

// Seed chains for the derived-RNG kernels. Both tiers share these
// integer chains verbatim — the tiers differ only in the transform
// applied to the final 64-bit seed (xoshiro + libm Box-Muller for the
// oracle, the counter-based batched kernels for batched), so a
// coordinate's identity is tier-independent.

/// Run-level prefix of the fade chain: everything that does not depend
/// on the pair/channel, hoisted so the fast engine computes it once per
/// run. Returns (state, first mixed output).
struct fade_run_prefix {
  std::uint64_t state = 0;
  std::uint64_t z = 0;
};

inline fade_run_prefix fade_prefix(std::uint64_t seed, int run) {
  std::uint64_t st =
      seed ^ (k_splitmix64_increment + static_cast<std::uint64_t>(run));
  fade_run_prefix p;
  p.z = splitmix64(st);
  p.state = st;
  return p;
}

/// Tail of the fade chain: folds the unordered pair and channel into
/// the run prefix, yielding the coordinate's fade seed.
inline std::uint64_t fade_seed(const fade_run_prefix& prefix, node_id a,
                               node_id b, channel_t ch) {
  const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
  const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
  std::uint64_t state = prefix.state ^ (prefix.z + (lo << 32 | hi));
  state ^= splitmix64(state) + static_cast<std::uint64_t>(ch);
  return splitmix64(state);
}

/// Pair-level state of the drift chain (intermittence classification
/// keys off this alone — intermittence is a property of the pair, not
/// of one channel).
inline std::uint64_t drift_pair_state(std::uint64_t seed, node_id a,
                                      node_id b) {
  const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
  const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
  std::uint64_t pair_state = seed ^ 0xd51f7ULL;
  pair_state ^= splitmix64(pair_state) + (lo << 32 | hi);
  return pair_state;
}

/// Per-channel drift seed derived from the pair state.
inline std::uint64_t drift_chan_seed(std::uint64_t pair_state,
                                     channel_t ch) {
  std::uint64_t state = pair_state;
  state ^= splitmix64(state) + static_cast<std::uint64_t>(ch);
  return splitmix64(state);
}

/// Drift sigma selection shared by both tiers up to the intermittence
/// draw, which each tier takes from its own transform of the pair seed.
inline double drift_sigma(const sim_config& config, bool maintained,
                          double intermittent_u) {
  if (maintained) {
    // Used links are re-measured every health-report epoch; a link
    // that went intermittent would be rerouted, so in steady state
    // the maintained population only sees small drift.
    return config.maintained_drift_sigma_db;
  }
  return intermittent_u < config.intermittent_fraction
             ? config.intermittent_sigma_db
             : config.calibration_drift_sigma_db;
}

/// Stream index for the batched tier's derived per-run interferer
/// activity stream: derive_seed(config.seed, k_interferer_stream, run).
/// Any fixed value distinct from the point indexes the experiment
/// harness feeds derive_seed works; collisions would only correlate
/// streams, not break determinism.
inline constexpr std::uint64_t k_interferer_stream = 0x1f7eedULL;

/// Stream index for the batched tier's derived per-run probe stream
/// (channel picks and Bernoulli thresholds; same derivation pattern as
/// the interferer stream above).
inline constexpr std::uint64_t k_probe_stream = 0x9b0be5ULL;

/// dBm <-> mW conversion constants for the batched tier's poly SINR
/// path: pow(10, x/10) == exp(x * ln10/10) and 10*log10(m) ==
/// 10/ln10 * ln(m), routed through batch_detail's poly_exp/poly_log.
inline constexpr double k_ln10_over_10 = std::numbers::ln10 / 10.0;
inline constexpr double k_10_over_ln10 = 10.0 / std::numbers::ln10;

/// Batched-tier drift: same seed chain as compute_drift_db, with the
/// xoshiro/Box-Muller transform replaced by the batched kernels.
double compute_drift_db_batched(const sim_config& config, bool maintained,
                                node_id a, node_id b, channel_t ch) {
  const std::uint64_t pair_state = drift_pair_state(config.seed, a, b);
  double u = 0.0;
  if (!maintained) {
    std::uint64_t s = pair_state;
    u = batch_uniform01(splitmix64(s));
  }
  const double sigma = drift_sigma(config, maintained, u);
  if (sigma <= 0.0) return 0.0;
  return sigma * batch_normal(drift_chan_seed(pair_state, ch));
}

/// Shared tail of both engines: totals, per-flow PDR, obs counters.
void finalize_result(sim_result& result,
                     const std::vector<flow::flow>& flows,
                     const std::vector<long long>& released,
                     const std::vector<long long>& delivered,
                     const sim_config& config) {
  for (double mj : result.energy.per_node_mj)
    result.energy.total_mj += mj;

  result.flow_pdr.resize(flows.size());
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    result.flow_pdr[fi] =
        released[fi] == 0 ? 1.0
                          : static_cast<double>(delivered[fi]) /
                                static_cast<double>(released[fi]);
    result.instances_released += released[fi];
    result.instances_delivered += delivered[fi];
  }
  if (wsan::obs::enabled()) {
    wsan::obs::add_counter("sim.simulations");
    wsan::obs::add_counter("sim.runs",
                           static_cast<std::uint64_t>(config.runs));
    wsan::obs::add_counter(
        "sim.data_transmissions",
        static_cast<std::uint64_t>(result.energy.data_transmissions));
    wsan::obs::add_counter(
        "sim.idle_listens",
        static_cast<std::uint64_t>(result.energy.idle_listens));
    wsan::obs::add_counter(
        "sim.instances_released",
        static_cast<std::uint64_t>(result.instances_released));
    wsan::obs::add_counter(
        "sim.instances_delivered",
        static_cast<std::uint64_t>(result.instances_delivered));
  }
}

// ---------------------------------------------------------------------
// Oracle engine: the original implementation, kept verbatim as the
// reference the fast path is tested against (sim_equivalence_test).
// Every live_rssi call re-seeds derived splitmix64 RNGs and samples
// normals; accumulators are per-run std::map/std::set; every slot
// allocates its scratch vectors.

sim_result run_simulation_naive(const topo::topology& topo,
                                const tsch::schedule& sched,
                                const std::vector<flow::flow>& flows,
                                const std::vector<channel_t>& channels,
                                const sim_config& config) {
  const slot_t hp = sched.num_slots();

  const auto by_slot = flatten_schedule(sched, flows, topo.num_nodes(),
                                        static_cast<int>(channels.size()));

  // Distinct links appearing in the schedule: probed by neighbor
  // discovery and maintained (fresh statistics) by health reports.
  std::vector<link_key> schedule_links;
  std::set<std::pair<node_id, node_id>> maintained_pairs;
  {
    std::map<link_key, bool> seen;
    for (const auto& p : sched.placements()) {
      seen[link_key{p.tx.sender, p.tx.receiver}] = true;
      maintained_pairs.insert({std::min(p.tx.sender, p.tx.receiver),
                               std::max(p.tx.sender, p.tx.receiver)});
    }
    if (config.probes_per_run > 0)
      for (const auto& [key, unused] : seen) schedule_links.push_back(key);
  }

  phy::capture_params capture;
  capture.capture_threshold_db = config.capture_threshold_db;
  capture.transition_width_db = config.capture_transition_db;
  capture.link = topo.link_model();

  interference_field field(topo, config.interferers, config.seed ^ 0x5eedULL);
  rng gen(config.seed);
  fault_state faults(config.faults, topo.num_nodes());

  const auto drift_db = [&](node_id a, node_id b, channel_t ch) {
    const bool maintained =
        maintained_pairs.count({std::min(a, b), std::max(a, b)}) > 0;
    return compute_drift_db(config, maintained, a, b, ch);
  };

  // Effective RSSI at experiment time.
  const auto live_rssi = [&](int run, node_id sender, node_id receiver,
                             channel_t ch) {
    return topo.rssi_dbm(sender, receiver, ch) +
           drift_db(sender, receiver, ch) +
           compute_fade_db(config, run, sender, receiver, ch);
  };

  // Packet progress per (flow, instance): index of the next route link
  // awaiting delivery; -1 marks a dead instance (both attempts failed).
  std::vector<std::vector<int>> progress(flows.size());
  std::vector<long long> delivered(flows.size(), 0);
  std::vector<long long> released(flows.size(), 0);

  sim_result result;
  result.energy.per_node_mj.assign(
      static_cast<std::size_t>(topo.num_nodes()), 0.0);
  const auto& em = config.energy;
  auto& energy = result.energy;

  for (int run = 0; run < config.runs; ++run) {
    faults.begin_run(run);
    // Reset per-run packet state; every instance releases anew.
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      const int instances = flows[fi].instances_in(hp);
      progress[fi].assign(static_cast<std::size_t>(instances), 0);
      released[fi] += instances;
    }
    std::map<link_key, link_run_counts> run_counts;

    for (slot_t s = 0; s < hp; ++s) {
      const auto& entries = by_slot[static_cast<std::size_t>(s)];
      if (entries.empty()) continue;
      const tsch::asn_t asn =
          static_cast<tsch::asn_t>(run) * hp + s;

      // Which scheduled transmissions actually fire: the packet must be
      // waiting at the link's sender (primary failed -> retry fires;
      // primary succeeded -> retry slot stays silent).
      std::vector<const slot_entry*> active;
      std::vector<channel_t> active_channel;
      for (const auto& entry : entries) {
        const auto fi = static_cast<std::size_t>(entry.tx.flow);
        const int prog = progress[fi][static_cast<std::size_t>(
            entry.tx.instance)];
        // A crashed sender is silent; a crashed receiver's radio is off
        // (no guard window, no energy).
        const bool sender_crashed = faults.node_down(entry.tx.sender);
        if (prog != entry.tx.link_index || sender_crashed) {
          // Nothing on the air for this entry: the sender either knows
          // its queue is empty and sleeps, or is dead. An alive receiver
          // must still open its guard window.
          if (!faults.node_down(entry.tx.receiver)) {
            energy.per_node_mj[static_cast<std::size_t>(
                entry.tx.receiver)] += em.idle_listen_mj;
            ++energy.idle_listens;
          }
          continue;  // done, dead, past, or crashed
        }
        active.push_back(&entry);
        active_channel.push_back(
            tsch::physical_channel(asn, entry.offset, channels));
      }
      if (active.empty()) continue;

      std::vector<bool> interferers_active = field.sample_active(gen);
      if (run < config.interferer_start_run)
        interferers_active.assign(interferers_active.size(), false);

      // Evaluate receptions against the snapshot of concurrent activity.
      std::vector<bool> success(active.size(), false);
      for (std::size_t i = 0; i < active.size(); ++i) {
        const auto& tx = active[i]->tx;
        const channel_t ch = active_channel[i];
        const double signal = live_rssi(run, tx.sender, tx.receiver, ch);
        std::vector<double> internal;
        for (std::size_t j = 0; j < active.size(); ++j) {
          if (j == i || active_channel[j] != ch) continue;
          internal.push_back(
              live_rssi(run, active[j]->tx.sender, tx.receiver, ch));
        }
        std::vector<double> external;
        for (int k = 0; k < field.num_interferers(); ++k) {
          if (!interferers_active[static_cast<std::size_t>(k)]) continue;
          if (const auto power = field.power_at(k, tx.receiver, ch))
            external.push_back(*power);
        }
        std::vector<double> combined = internal;
        combined.insert(combined.end(), external.begin(), external.end());
        const double p =
            phy::reception_probability(capture, signal, combined);
        // A crashed receiver, failed link, or jammed slot loses the
        // packet regardless of the channel (the sender, not knowing,
        // transmits anyway and still interferes with concurrent
        // receptions). The Bernoulli draw is consumed either way so a
        // fault does not reshuffle the sample path of unrelated links
        // within the slot.
        const bool faulted_rx = faults.node_down(tx.receiver) ||
                                faults.link_down(tx.sender, tx.receiver) ||
                                faults.slot_jammed(s);
        success[i] = gen.bernoulli(p) && !faulted_rx;

        // Ground-truth attribution (counterfactual reception). Fault
        // losses are neither internal nor external interference.
        auto& counts =
            run_counts[link_key{tx.sender, tx.receiver}];
        if (!internal.empty() && !faulted_rx) {
          counts.loss_internal +=
              phy::reception_probability(capture, signal, external) - p;
        }
        if (!external.empty() && !faulted_rx) {
          counts.loss_external +=
              phy::reception_probability(capture, signal, internal) - p;
        }
      }

      // Apply outcomes: advance or (on a failed retry) kill the packet.
      for (std::size_t i = 0; i < active.size(); ++i) {
        const auto& entry = *active[i];
        const auto& tx = entry.tx;
        const auto fi = static_cast<std::size_t>(tx.flow);
        auto& prog =
            progress[fi][static_cast<std::size_t>(tx.instance)];

        auto& counts = run_counts[link_key{tx.sender, tx.receiver}];
        if (entry.reuse_cell) {
          ++counts.reuse_attempts;
          counts.reuse_successes += success[i] ? 1 : 0;
        } else {
          ++counts.cf_attempts;
          counts.cf_successes += success[i] ? 1 : 0;
        }

        // Energy: sender transmits and listens for the ACK; an alive
        // receiver listens for the packet and ACKs only what it decoded
        // (a crashed receiver's radio draws nothing).
        energy.per_node_mj[static_cast<std::size_t>(tx.sender)] +=
            em.tx_packet_mj + em.rx_ack_mj;
        if (!faults.node_down(tx.receiver)) {
          energy.per_node_mj[static_cast<std::size_t>(tx.receiver)] +=
              em.rx_packet_mj + (success[i] ? em.tx_ack_mj : 0.0);
        }
        ++energy.data_transmissions;

        if (success[i]) {
          ++prog;
          if (prog == static_cast<int>(flows[fi].route.size()))
            ++delivered[fi];
        }
        // A failed final attempt leaves prog at the link; later slots of
        // this instance reference higher link indexes and stay silent,
        // which is exactly the dedicated-slot semantics of source
        // routing. (The retry for this link, if still pending, fires.)
      }
    }

    // Neighbor-discovery probes: contention-free broadcasts that hop
    // across the channel list, exposed only to external interference.
    for (const auto& link : schedule_links) {
      if (faults.node_down(link.sender)) continue;  // dead nodes are mute
      const bool probe_faulted = faults.node_down(link.receiver) ||
                                 faults.link_down(link.sender,
                                                  link.receiver);
      auto& counts = run_counts[link];
      for (int probe = 0; probe < config.probes_per_run; ++probe) {
        const channel_t ch = channels[static_cast<std::size_t>(
            gen.uniform_int(0,
                            static_cast<std::int64_t>(channels.size()) -
                                1))];
        const double signal = live_rssi(run, link.sender, link.receiver, ch);
        std::vector<double> interference;
        std::vector<bool> probe_interferers = field.sample_active(gen);
        if (run < config.interferer_start_run)
          probe_interferers.assign(probe_interferers.size(), false);
        for (int k = 0; k < field.num_interferers(); ++k) {
          if (!probe_interferers[static_cast<std::size_t>(k)]) continue;
          if (const auto power = field.power_at(k, link.receiver, ch))
            interference.push_back(*power);
        }
        const double p =
            phy::reception_probability(capture, signal, interference);
        ++counts.cf_attempts;
        counts.cf_successes += (gen.bernoulli(p) && !probe_faulted) ? 1 : 0;
        energy.per_node_mj[static_cast<std::size_t>(link.sender)] +=
            em.tx_packet_mj;  // broadcast: no ACK
        if (!faults.node_down(link.receiver)) {
          energy.per_node_mj[static_cast<std::size_t>(link.receiver)] +=
              em.rx_packet_mj;
        }
        ++energy.data_transmissions;
        if (!interference.empty() && !probe_faulted) {
          counts.loss_external +=
              phy::reception_probability(capture, signal, {}) - p;
        }
      }
    }

    for (const auto& [key, counts] : run_counts) {
      if (counts.reuse_attempts == 0 && counts.cf_attempts == 0) continue;
      // Health reports are the sender's to deliver: a crashed or
      // suppressed sender's statistics never reach the manager.
      if (faults.reports_withheld(key.sender)) continue;
      auto& obs = result.links[key];
      if (counts.reuse_attempts > 0) {
        obs.reuse_samples.emplace_back(
            run, static_cast<double>(counts.reuse_successes) /
                     static_cast<double>(counts.reuse_attempts));
        obs.reuse_attempts += counts.reuse_attempts;
        obs.reuse_successes += counts.reuse_successes;
      }
      if (counts.cf_attempts > 0) {
        obs.cf_samples.emplace_back(
            run, static_cast<double>(counts.cf_successes) /
                     static_cast<double>(counts.cf_attempts));
        obs.cf_attempts += counts.cf_attempts;
        obs.cf_successes += counts.cf_successes;
      }
      obs.expected_loss_internal += counts.loss_internal;
      obs.expected_loss_external += counts.loss_external;
    }
  }

  finalize_result(result, flows, released, delivered, config);
  return result;
}

// ---------------------------------------------------------------------
// Fast engine (DESIGN.md §10): allocation-free in steady state and
// memoized. drift_db is pure per (unordered pair, channel) and
// temporal_fade_db pure per (run, unordered pair, channel), so both are
// cached in flat tables — replacing a splitmix64 re-seed plus a
// Box-Muller normal per live_rssi call (including the O(active²)
// internal-interference cross products) with an array read. Per-link
// statistics accumulate in dense arrays over links interned once at
// setup, and every per-slot scratch vector is hoisted into a reusable
// pre-reserved buffer. The caches only memoize values drawn from
// *derived* RNGs keyed by their coordinates; in the default oracle
// tier every draw from the main `gen` stream (interferer activity,
// reception Bernoullis, probe channels) happens in exactly the naive
// order, so the sample path — and therefore every output — is
// bit-identical to the oracle engine.
//
// The batched tier (config.fade_kernel == batched) keeps the engine
// structure and the coordinate-keyed seed chains but swaps the scalar
// xoshiro + libm transforms for the vectorized counter-based kernels
// of common/batch_rng.h: a dense whole-table refill per run
// (batch_fade_fill over run-invariant pair-key/channel/base arrays), a
// drift-table setup batch (prefill_drift_batched), and derived per-run
// streams for interferer duty-cycle activity
// (refresh_interferer_rows) and probe draws. Outputs are then
// statistically — not bitwise — equivalent to the oracle, which the
// K-S gate in stats/equivalence.h enforces.

/// Compact per-transmission record for the fast engine's hyperperiod
/// scan. Everything the slot loop reads per entry, packed into 24
/// bytes: the progress index is precomputed (prog_offset_[flow] +
/// instance), and the narrow fields carry construction-time range
/// checks. slot_entry stays as the shared flattening type; the fast
/// engine re-packs it once at setup.
struct fast_entry {
  int prog_index;            ///< flat (flow, instance) progress slot
  flow_id flow;              ///< route_len_ / delivered index
  node_id sender;
  node_id receiver;
  int link;                  ///< dense link index
  std::int16_t link_index;   ///< hop position within the route
  std::uint8_t so_mod;       ///< (slot + offset) mod |channels|
  std::uint8_t reuse_cell;   ///< scheduled cell holds >= 2 transmissions
};

class fast_engine {
 public:
  fast_engine(const topo::topology& topo, const tsch::schedule& sched,
              const std::vector<flow::flow>& flows,
              const std::vector<channel_t>& channels,
              const sim_config& config)
      : topo_(topo),
        flows_(flows),
        config_(config),
        n_(topo.num_nodes()),
        ncl_(static_cast<int>(channels.size())),
        hp_(sched.num_slots()),
        field_(topo, config.interferers, config.seed ^ 0x5eedULL),
        faults_(config.faults, topo.num_nodes()),
        faults_on_(faults_.any()) {
    capture_.capture_threshold_db = config.capture_threshold_db;
    capture_.transition_width_db = config.capture_transition_db;
    capture_.link = topo.link_model();

    auto by_slot = flatten_schedule(sched, flows, n_, ncl_);

    // Link interning: dense indices assigned in link_key order, so the
    // per-run flush below walks links exactly as the oracle's
    // std::map<link_key, ...> iteration does.
    std::map<link_key, int> interned;
    for (const auto& p : sched.placements())
      interned.emplace(link_key{p.tx.sender, p.tx.receiver}, 0);
    link_keys_.reserve(interned.size());
    for (auto& [key, index] : interned) {
      index = static_cast<int>(link_keys_.size());
      link_keys_.push_back(key);
    }
    // Per-flow instance layout: progress for all (flow, instance)
    // slots lives in one flat array reset with a single fill per run.
    // Computed before the entry array so each entry can carry its
    // precomputed progress index.
    prog_offset_.resize(flows.size() + 1);
    flow_instances_.resize(flows.size());
    route_len_.resize(flows.size());
    int prog_total = 0;
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      prog_offset_[fi] = prog_total;
      flow_instances_[fi] = flows[fi].instances_in(hp_);
      route_len_[fi] = static_cast<int>(flows[fi].route.size());
      prog_total += flow_instances_[fi];
    }
    prog_offset_[flows.size()] = prog_total;
    progress_.assign(static_cast<std::size_t>(prog_total), 0);

    // One contiguous compact entry array with per-slot ranges: the
    // per-run scan reads every entry once, so the flat sequence and
    // the halved row size (24 bytes vs ~48 for slot_entry) halve the
    // cache lines the scan streams per run.
    std::size_t max_entries = 0;
    slot_begin_.resize(static_cast<std::size_t>(hp_) + 1);
    for (slot_t s = 0; s < hp_; ++s) {
      const auto& entries = by_slot[static_cast<std::size_t>(s)];
      max_entries = std::max(max_entries, entries.size());
      slot_begin_[static_cast<std::size_t>(s)] =
          static_cast<int>(entries_.size());
      for (const auto& entry : entries) {
        WSAN_REQUIRE(entry.tx.link_index <=
                         std::numeric_limits<std::int16_t>::max(),
                     "route longer than the compact entry field");
        fast_entry fe;
        fe.prog_index =
            prog_offset_[static_cast<std::size_t>(entry.tx.flow)] +
            entry.tx.instance;
        fe.flow = entry.tx.flow;
        fe.sender = entry.tx.sender;
        fe.receiver = entry.tx.receiver;
        fe.link =
            interned.at(link_key{entry.tx.sender, entry.tx.receiver});
        fe.link_index = static_cast<std::int16_t>(entry.tx.link_index);
        fe.so_mod = static_cast<std::uint8_t>(entry.so_mod);
        fe.reuse_cell = entry.reuse_cell ? 1 : 0;
        entries_.push_back(fe);
      }
    }
    slot_begin_[static_cast<std::size_t>(hp_)] =
        static_cast<int>(entries_.size());

    // Maintained unordered pairs as a dense bitmap (drift asymmetry).
    maintained_.assign(
        static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), 0);
    for (const auto& key : link_keys_)
      maintained_[pair_offset(key.sender, key.receiver)] = 1;

    // Channel list positions -> physical channel value. All memo tables
    // are keyed by list position (0..|channels|-1) rather than the
    // 16-wide IEEE channel index: the list is what the hopping loop and
    // the probe draw actually index, and the narrow dimension keeps the
    // tables a few hundred KB instead of several MB. A channel value
    // that appears at two list positions just gets the same pure value
    // recomputed once per position.
    list_chan_.resize(static_cast<std::size_t>(ncl_));
    for (int i = 0; i < ncl_; ++i)
      list_chan_[static_cast<std::size_t>(i)] =
          channels[static_cast<std::size_t>(i)];

    // Memoization tables, lazily filled: (unordered pair, channel) for
    // drift, epoch-stamped (run, unordered pair, channel) for fading.
    // The double arrays are left uninitialized on purpose — the ready /
    // epoch bytes gate every read — so construction does not touch
    // megabytes of memory it will never fully use.
    drift_zero_ = config.calibration_drift_sigma_db <= 0.0 &&
                  config.maintained_drift_sigma_db <= 0.0 &&
                  (config.intermittent_fraction <= 0.0 ||
                   config.intermittent_sigma_db <= 0.0);
    const std::size_t pair_channels = static_cast<std::size_t>(n_) *
                                      static_cast<std::size_t>(n_) *
                                      static_cast<std::size_t>(ncl_);
    if (!drift_zero_) {
      drift_.reset(new double[pair_channels]);
      drift_ready_.assign(pair_channels, 0);
    }
    fade_on_ = config.temporal_fading_sigma_db > 0.0;
    // Directed memo state, keyed by (schedule link, channel position):
    // every hot-path query — reception signal, clean reception
    // probability, probe probability — is for a link the schedule
    // carries, so the cache is sized |links| * |channels| (tens of KB,
    // resident in L1/L2) instead of nodes^2 * |channels| (megabytes of
    // address space whose touched lines keep falling out of cache).
    // Each struct holds the run-invariant base (RSSI + drift), the
    // epoch-stamped live signal, and the epoch-stamped clean reception
    // probability, so a query and its miss path stay on one cache
    // line. Fading is the only run-dependent input: with fading off
    // entries stay valid for the whole simulation (epoch 1); with
    // fading on they are stamped per run. The only query this cache
    // cannot serve — the cross RSSI of a concurrent sender into
    // another link's receiver — has its own lazily allocated memo
    // (see cross_rssi).
    link_coords_.reset(
        new coord_cache[link_keys_.size() *
                        static_cast<std::size_t>(ncl_)]());
    // The zero-interference reception probability is
    // prr_from_rssi(link, signal): both parameter validations and the
    // sigmoid constants are hoisted here so the per-miss work is just
    // the clamped sigmoid itself. If either transition width is
    // invalid the miss path falls back to phy::reception_probability,
    // which throws exactly as the oracle does.
    p0_inline_ok_ = capture_.transition_width_db > 0.0 &&
                    capture_.link.transition_width_db > 0.0;
    p0_scale_ = capture_.link.transition_width_db / 4.0;
    p0_sens_ = capture_.link.sensitivity_dbm;

    // Probe channel draw, inlined from rng::uniform_int(0, ncl-1): the
    // Lemire rejection threshold only depends on the range, so it is
    // computed once instead of per probe.
    probe_range_ = static_cast<std::uint64_t>(ncl_);
    probe_threshold_ = (0 - probe_range_) % probe_range_;

    // External interferers: overlap per (interferer, list position) and
    // received power per (interferer, node), so the hot loop reads two
    // arrays instead of calling power_at.
    const int num_intf = field_.num_interferers();
    ext_overlap_.assign(
        static_cast<std::size_t>(num_intf) * static_cast<std::size_t>(ncl_),
        0);
    ext_power_.assign(static_cast<std::size_t>(num_intf) *
                          static_cast<std::size_t>(n_),
                      0.0);
    for (int k = 0; k < num_intf; ++k) {
      for (int ci = 0; ci < ncl_; ++ci)
        ext_overlap_[static_cast<std::size_t>(k) *
                         static_cast<std::size_t>(ncl_) +
                     static_cast<std::size_t>(ci)] =
            phy::wifi_overlaps(field_.interferer(k).wifi_channel,
                               list_chan_[static_cast<std::size_t>(ci)])
                ? 1
                : 0;
      for (node_id v = 0; v < n_; ++v)
        ext_power_[static_cast<std::size_t>(k) *
                       static_cast<std::size_t>(n_) +
                   static_cast<std::size_t>(v)] = field_.received_dbm(k, v);
    }

    // Hopping-class prefill logs and probe-batch scratch, sized so the
    // steady-state loops never allocate.
    coord_count_ = link_keys_.size() * static_cast<std::size_t>(ncl_);
    prefill_on_ = fade_on_ && p0_inline_ok_;
    class_log_.resize(static_cast<std::size_t>(ncl_));
    for (auto& log : class_log_) log.reserve(coord_count_);
    run_used_mark_.assign(coord_count_, 0);
    run_used_ids_.reserve(coord_count_);
    const std::size_t max_probes =
        link_keys_.size() *
        static_cast<std::size_t>(
            config.probes_per_run > 0 ? config.probes_per_run : 0);
    probe_ci_.resize(max_probes);
    probe_u_.resize(max_probes);
    miss_queue_.reserve(coord_count_);

    // Scratch buffers, reserved once; the slot loop only clear()s them.
    active_.reserve(max_entries);
    active_chan_pos_.reserve(max_entries);
    active_chan_val_.reserve(max_entries);
    success_.reserve(max_entries);
    powers_.reserve(max_entries + static_cast<std::size_t>(num_intf));
    interferers_active_.reserve(static_cast<std::size_t>(num_intf));
    counts_.assign(link_keys_.size(), link_run_counts{});
    obs_cache_.assign(link_keys_.size(), nullptr);

    // Batched tier setup (everything above is tier-independent).
    batched_ = config.fade_kernel == fade_kernel_kind::batched;
    if (batched_) {
      // Poly SINR path: the interference branch of the reception
      // probability re-expressed through the batch poly kernels (see
      // reception_probability below). Gated on the same width
      // validation as the inline p0; the noise-floor term of the SINR
      // denominator is run-invariant, so it is converted once here.
      poly_rx_ = p0_inline_ok_;
      cap_thresh_ = capture_.capture_threshold_db;
      cap_scale_ = capture_.transition_width_db / 4.0;
      noise_mw_ = batch_detail::poly_exp(capture_.link.noise_floor_dbm *
                                         k_ln10_over_10);
      if (poly_rx_) {
        powers_mw_.reserve(powers_.capacity());
        ext_power_mw_.resize(ext_power_.size());
        for (std::size_t i = 0; i < ext_power_.size(); ++i)
          ext_power_mw_[i] =
              batch_detail::poly_exp(ext_power_[i] * k_ln10_over_10);
      }
      probe_uu_.resize(2 * max_probes);
      if (!drift_zero_) prefill_drift_batched();
      // Dense refill mode: with fading on, nearly every (link, channel)
      // coordinate is touched every run (the slot working set plus the
      // probes' uniform channel picks cover the table), so the batched
      // tier refills the whole table once per run with one fused
      // kernel call over run-invariant arrays instead of tracking
      // misses. Pair keys, channels and bases (rssi + drift) never
      // change across runs; the run prefix enters inside the kernel.
      dense_on_ = fade_on_ && p0_inline_ok_;
      if (dense_on_) {
        prefill_on_ = false;  // subsumed: no used-set tracking needed
        dense_pk_.resize(coord_count_);
        dense_ch_.resize(coord_count_);
        dense_base_.resize(coord_count_);
        dense_sig_.resize(coord_count_);
        dense_p0_.resize(coord_count_);
        for (std::size_t li = 0; li < link_keys_.size(); ++li) {
          const link_key& key = link_keys_[li];
          const auto lo = static_cast<std::uint64_t>(
              key.sender < key.receiver ? key.sender : key.receiver);
          const auto hi = static_cast<std::uint64_t>(
              key.sender < key.receiver ? key.receiver : key.sender);
          for (int ci = 0; ci < ncl_; ++ci) {
            const std::size_t id = li * static_cast<std::size_t>(ncl_) +
                                   static_cast<std::size_t>(ci);
            const channel_t ch =
                list_chan_[static_cast<std::size_t>(ci)];
            dense_pk_[id] = lo << 32 | hi;
            dense_ch_[id] = static_cast<std::uint64_t>(ch);
            dense_base_[id] =
                topo_.rssi_dbm(key.sender, key.receiver, ch) +
                drift(key.sender, key.receiver, ci, ch);
          }
        }
      }
      if (num_intf > 0) {
        // One activity row per possible sample point of a run: every
        // slot of the hyperperiod plus every probe. A run consumes at
        // most that many rows (slots without active transmissions and
        // muted links skip theirs).
        const std::size_t rows =
            static_cast<std::size_t>(hp_) + max_probes;
        intf_active_.resize(rows * static_cast<std::size_t>(num_intf));
        intf_u_.resize(rows * static_cast<std::size_t>(num_intf));
        intf_duty_.resize(static_cast<std::size_t>(num_intf));
        for (int k = 0; k < num_intf; ++k)
          intf_duty_[static_cast<std::size_t>(k)] =
              field_.interferer(k).duty_cycle;
      }
    }
  }

  sim_result run() {
    rng gen(config_.seed);
    const int num_intf = field_.num_interferers();

    std::vector<long long> delivered(flows_.size(), 0);
    std::vector<long long> released(flows_.size(), 0);

    sim_result result;
    result.energy.per_node_mj.assign(static_cast<std::size_t>(n_), 0.0);
    const auto& em = config_.energy;
    auto& energy = result.energy;

    for (int run = 0; run < config_.runs; ++run) {
      faults_.begin_run(run);
      std::fill(progress_.begin(), progress_.end(), 0);
      for (std::size_t fi = 0; fi < flows_.size(); ++fi)
        released[fi] += flow_instances_[fi];
      std::fill(counts_.begin(), counts_.end(), link_run_counts{});
      // (run * hp + s + offset) mod |channels|, with the run component
      // folded out of the per-entry work.
      const int run_base = static_cast<int>(
          (static_cast<std::int64_t>(run) * hp_) % ncl_);
      run_class_ = run_base;
      epoch_ = fade_on_ ? static_cast<std::uint32_t>(run) + 1 : 1;
      if (fade_on_) {
        // Hoist the run-only prefix of compute_fade_db's seed chain:
        // the first splitmix64 step mutates the state by a constant and
        // mixes a value that depends only on the run, so both halves
        // can be computed once here and xor-combined with the pair key
        // per miss.
        fade_prefix_ = fade_prefix(config_.seed, run);
        // Prefill the coordinates the slot loop used in the previous
        // run of this hopping class (the (slot, offset) -> channel
        // mapping repeats with period |channels|, so the used set is a
        // high-accuracy predictor). Batching the fills lets the fade
        // kernels' splitmix/log/cos chains pipeline across independent
        // coordinates, where the lazy miss path pays each chain's full
        // serial latency — and in the batched tier the whole working
        // set goes through one vectorized normal + sigmoid pass.
        // Prefilled values are pure derived data: a retry coordinate
        // that does not fire this run wastes a kernel but cannot
        // perturb the main gen stream.
        if (dense_on_) {
          // Whole-table refill, one fused vectorized pass: fade chain,
          // sigma scale, base add and clean-PRR sigmoid for every
          // coordinate. Readers then index dense_sig_/dense_p0_
          // directly — no epochs, no used-set tracking, no miss
          // queues. Per-coordinate values match the lazy element
          // transforms exactly (same chain, same expression order).
          batch_fade_fill(fade_prefix_.state, fade_prefix_.z,
                          dense_pk_.data(), dense_ch_.data(),
                          dense_base_.data(), coord_count_,
                          config_.temporal_fading_sigma_db, p0_sens_,
                          p0_scale_, dense_sig_.data(),
                          dense_p0_.data());
          obs_fade_kernels_ += coord_count_;
        } else if (prefill_on_) {
          for (const int packed :
               class_log_[static_cast<std::size_t>(run_class_)]) {
            const std::size_t idx =
                static_cast<std::size_t>(packed >> 8) *
                    static_cast<std::size_t>(ncl_) +
                static_cast<std::size_t>(packed & 255);
            if (link_coords_[idx].sig_epoch != epoch_) fill_coord(packed);
          }
        }
      }
      if (batched_ && num_intf > 0) refresh_interferer_rows(run);

      {
        OBS_SPAN("sim.slot_loop");
        for (slot_t s = 0; s < hp_; ++s) {
          const int eb = slot_begin_[static_cast<std::size_t>(s)];
          const int ee = slot_begin_[static_cast<std::size_t>(s) + 1];
          if (eb == ee) continue;

          active_.clear();
          active_chan_pos_.clear();
          active_chan_val_.clear();
          for (int e = eb; e < ee; ++e) {
            const auto& entry = entries_[static_cast<std::size_t>(e)];
            const int prog =
                progress_[static_cast<std::size_t>(entry.prog_index)];
            const bool sender_crashed =
                faults_on_ && faults_.node_down(entry.sender);
            if (prog != entry.link_index || sender_crashed) {
              if (!faults_on_ || !faults_.node_down(entry.receiver)) {
                energy.per_node_mj[static_cast<std::size_t>(
                    entry.receiver)] += em.idle_listen_mj;
                ++energy.idle_listens;
              }
              continue;  // done, dead, past, or crashed
            }
            active_.push_back(&entry);
            int ci = run_base + entry.so_mod;
            if (ci >= ncl_) ci -= ncl_;
            active_chan_pos_.push_back(ci);
            active_chan_val_.push_back(
                list_chan_[static_cast<std::size_t>(ci)]);
          }
          if (active_.empty()) continue;
          obs_active_transmissions_ += active_.size();

          if (num_intf > 0) {
            // With no interferers the oracle's sample_active draws
            // nothing and fills nothing, so the call is elided. The
            // batched tier reads the next pre-generated activity row
            // instead of consuming main-stream draws (its derived
            // per-run stream; see refresh_interferer_rows).
            if (batched_) {
              next_interferer_row();
            } else {
              field_.sample_active(gen, interferers_active_);
              if (run < config_.interferer_start_run)
                std::fill(interferers_active_.begin(),
                          interferers_active_.end(), char{0});
            }
          }

          success_.assign(active_.size(), 0);
          for (std::size_t i = 0; i < active_.size(); ++i) {
            const auto& tx = *active_[i];
            const int li = tx.link;
            const channel_t ch = active_chan_val_[i];
            const int ci = active_chan_pos_[i];
            // One scratch buffer, internal powers first then external:
            // sub-ranges feed the counterfactual reception probabilities
            // in exactly the oracle's vector order.
            powers_.clear();
            powers_mw_.clear();
            for (std::size_t j = 0; j < active_.size(); ++j) {
              if (j == i || active_chan_val_[j] != ch) continue;
              powers_.push_back(cross_rssi(active_[j]->sender,
                                           tx.receiver, ci, ch));
              if (poly_rx_)
                powers_mw_.push_back(
                    cross_mw_[cross_index(active_[j]->sender,
                                          tx.receiver, ci)]);
            }
            const std::size_t internal_count = powers_.size();
            obs_internal_pairs_ += internal_count;
            for (int k = 0; k < num_intf; ++k) {
              if (!interferers_active_[static_cast<std::size_t>(k)])
                continue;
              if (!ext_overlap_[static_cast<std::size_t>(k) *
                                    static_cast<std::size_t>(ncl_) +
                                static_cast<std::size_t>(ci)])
                continue;
              const std::size_t pi =
                  static_cast<std::size_t>(k) *
                      static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(tx.receiver);
              powers_.push_back(ext_power_[pi]);
              if (poly_rx_) powers_mw_.push_back(ext_power_mw_[pi]);
            }
            const std::size_t external_count =
                powers_.size() - internal_count;
            // Interference-free receptions — the bulk of a
            // contention-free schedule — collapse to one cached
            // probability; the signal is only assembled when a
            // counterfactual needs it.
            double p;
            if (powers_.empty()) {
              p = p0<true>(li, tx.sender, tx.receiver, ci, ch);
            } else {
              const double signal =
                  link_signal<true>(li, tx.sender, tx.receiver, ci, ch);
              p = rx_prob<true>(li, tx.sender, tx.receiver, ci, ch,
                                signal, 0, powers_.size());
              auto& counts = counts_[static_cast<std::size_t>(li)];
              const bool faulted =
                  faults_on_ &&
                  (faults_.node_down(tx.receiver) ||
                   faults_.link_down(tx.sender, tx.receiver) ||
                   faults_.slot_jammed(s));
              if (internal_count > 0 && !faulted) {
                // Counterfactual without the in-network interferers:
                // the external sub-span alone, or the cached p0 when
                // nothing external is active.
                const double without_internal =
                    external_count > 0
                        ? rx_prob<true>(li, tx.sender, tx.receiver, ci,
                                        ch, signal, internal_count,
                                        external_count)
                        : p0<true>(li, tx.sender, tx.receiver, ci, ch);
                counts.loss_internal += without_internal - p;
              }
              if (external_count > 0 && !faulted) {
                const double without_external =
                    internal_count > 0
                        ? rx_prob<true>(li, tx.sender, tx.receiver, ci,
                                        ch, signal, 0, internal_count)
                        : p0<true>(li, tx.sender, tx.receiver, ci, ch);
                counts.loss_external += without_external - p;
              }
            }
            const bool faulted_rx =
                faults_on_ &&
                (faults_.node_down(tx.receiver) ||
                 faults_.link_down(tx.sender, tx.receiver) ||
                 faults_.slot_jammed(s));
            success_[i] = (gen.bernoulli(p) && !faulted_rx) ? 1 : 0;
          }

          for (std::size_t i = 0; i < active_.size(); ++i) {
            const auto& tx = *active_[i];
            const auto fi = static_cast<std::size_t>(tx.flow);
            auto& prog =
                progress_[static_cast<std::size_t>(tx.prog_index)];

            auto& counts =
                counts_[static_cast<std::size_t>(tx.link)];
            if (tx.reuse_cell) {
              ++counts.reuse_attempts;
              counts.reuse_successes += success_[i] ? 1 : 0;
            } else {
              ++counts.cf_attempts;
              counts.cf_successes += success_[i] ? 1 : 0;
            }

            energy.per_node_mj[static_cast<std::size_t>(tx.sender)] +=
                em.tx_packet_mj + em.rx_ack_mj;
            if (!faults_on_ || !faults_.node_down(tx.receiver)) {
              energy.per_node_mj[static_cast<std::size_t>(tx.receiver)] +=
                  em.rx_packet_mj + (success_[i] ? em.tx_ack_mj : 0.0);
            }
            ++energy.data_transmissions;

            if (success_[i]) {
              ++prog;
              if (prog == route_len_[fi]) ++delivered[fi];
            }
          }
        }
      }

      if (prefill_on_) {
        // This run's used set becomes the next same-class run's
        // prefill list; the scratch bitmap is wiped by walking the
        // same list (never the full table).
        auto& log = class_log_[static_cast<std::size_t>(run_class_)];
        log.assign(run_used_ids_.begin(), run_used_ids_.end());
        for (const int packed : run_used_ids_) {
          run_used_mark_[static_cast<std::size_t>(packed >> 8) *
                             static_cast<std::size_t>(ncl_) +
                         static_cast<std::size_t>(packed & 255)] = 0;
        }
        run_used_ids_.clear();
      }

      if (config_.probes_per_run > 0 && num_intf == 0) {
        OBS_SPAN("sim.probe_loop");
        // With no external interferers a probe's outcome is just its
        // clean reception probability, and the gen draw sequence —
        // channel pick then Bernoulli uniform per probe — does not
        // depend on any reception probability. So the draws are
        // consumed up front in exactly the oracle's order, the missing
        // (link, channel) table entries are filled in one batch whose
        // independent fade kernels pipeline, and the outcomes are then
        // evaluated from the warm table.
        std::size_t np = 0;
        miss_queue_.clear();
        if (batched_) {
          // The batched tier takes probe channel picks and Bernoulli
          // thresholds from a derived per-run stream generated in one
          // vectorized uniform pass (same pattern as the interferer
          // rows) instead of draw-by-draw from the main gen stream:
          // the first |links|*probes values are the channel uniforms,
          // the second half the outcome thresholds, indexed by (link,
          // probe) so muted links skip their entries without shifting
          // anyone else's. Channel picks map through floor(u * ncl)
          // rather than the oracle's rejection loop — both are uniform
          // over the list, which is all the statistical contract asks.
          // Since the dense refill already warmed every coordinate,
          // pick, compare and accounting fuse into one pass — no
          // recorded draw arrays, no deferred fill.
          const std::size_t np_total =
              link_keys_.size() *
              static_cast<std::size_t>(config_.probes_per_run);
          batch_uniform01s(derive_seed(config_.seed, k_probe_stream,
                                       static_cast<std::uint64_t>(run)),
                           2 * np_total, probe_uu_.data());
          const double* uch = probe_uu_.data();
          const double* uth = probe_uu_.data() + np_total;
          const double dncl = static_cast<double>(ncl_);
          for (std::size_t li = 0; li < link_keys_.size(); ++li) {
            const auto& link = link_keys_[li];
            if (faults_on_ && faults_.node_down(link.sender))
              continue;  // mute
            const bool probe_faulted =
                faults_on_ &&
                (faults_.node_down(link.receiver) ||
                 faults_.link_down(link.sender, link.receiver));
            const bool rx_alive =
                !faults_on_ || !faults_.node_down(link.receiver);
            auto& counts = counts_[li];
            const std::size_t base =
                li * static_cast<std::size_t>(config_.probes_per_run);
            for (int probe = 0; probe < config_.probes_per_run;
                 ++probe) {
              int ci = static_cast<int>(
                  uch[base + static_cast<std::size_t>(probe)] * dncl);
              // u < 1 keeps u*ncl < ncl except for a possible
              // round-to-even at the very top of the range; clamp the
              // (never-taken in practice) overflow instead of trusting
              // the rounding mode.
              if (ci >= ncl_) ci = ncl_ - 1;
              const double p =
                  dense_on_
                      ? dense_p0_[li * static_cast<std::size_t>(ncl_) +
                                  static_cast<std::size_t>(ci)]
                      : p0(static_cast<int>(li), link.sender,
                           link.receiver, ci,
                           list_chan_[static_cast<std::size_t>(ci)]);
              // Same validation gen.bernoulli(p) performs before the
              // comparison.
              WSAN_REQUIRE(p >= 0.0 && p <= 1.0,
                           "bernoulli requires p in [0, 1]");
              ++counts.cf_attempts;
              counts.cf_successes +=
                  (uth[base + static_cast<std::size_t>(probe)] < p &&
                   !probe_faulted)
                      ? 1
                      : 0;
              energy.per_node_mj[static_cast<std::size_t>(
                  link.sender)] += em.tx_packet_mj;  // broadcast: no ACK
              if (rx_alive) {
                energy.per_node_mj[static_cast<std::size_t>(
                    link.receiver)] += em.rx_packet_mj;
              }
              ++energy.data_transmissions;
            }
          }
        } else {
          for (std::size_t li = 0; li < link_keys_.size(); ++li) {
            if (faults_on_ && faults_.node_down(link_keys_[li].sender))
              continue;  // mute
            for (int probe = 0; probe < config_.probes_per_run;
                 ++probe) {
              // Inline of gen.uniform_int(0, ncl-1): identical
              // rejection loop consuming identical draws, with the
              // range-dependent threshold precomputed at setup.
              int ci;
              for (;;) {
                const std::uint64_t r = gen();
                if (r >= probe_threshold_) {
                  ci = static_cast<int>(r % probe_range_);
                  break;
                }
              }
              probe_ci_[np] = ci;
              // The draw gen.bernoulli(p) would consume, recorded
              // before p is known (the comparison happens in the last
              // phase).
              probe_u_[np] = gen.uniform01();
              ++np;
              if (p0_inline_ok_) {
                coord_cache& c =
                    link_coords_[li * static_cast<std::size_t>(ncl_) +
                                 static_cast<std::size_t>(ci)];
                if (c.p0_epoch != epoch_) {
                  // Stamp now so duplicates queue once; the value
                  // lands in the fill pass below, before anything
                  // reads it.
                  c.p0_epoch = epoch_;
                  miss_queue_.push_back((static_cast<int>(li) << 8) |
                                        ci);
                }
              }
            }
          }
          for (const int id : miss_queue_) fill_coord(id);
          std::size_t pi = 0;
          for (std::size_t li = 0; li < link_keys_.size(); ++li) {
            const auto& link = link_keys_[li];
            if (faults_on_ && faults_.node_down(link.sender)) continue;
            const bool probe_faulted =
                faults_on_ &&
                (faults_.node_down(link.receiver) ||
                 faults_.link_down(link.sender, link.receiver));
            const bool rx_alive =
                !faults_on_ || !faults_.node_down(link.receiver);
            auto& counts = counts_[li];
            for (int probe = 0; probe < config_.probes_per_run;
                 ++probe, ++pi) {
              const int ci = probe_ci_[pi];
              // With the inline sigmoid available, every probe
              // coordinate was stamped and filled above, so the table
              // read needs no epoch check; otherwise the regular
              // memoized query runs.
              const double p =
                  p0_inline_ok_
                      ? link_coords_[li * static_cast<std::size_t>(
                                              ncl_) +
                                     static_cast<std::size_t>(ci)]
                            .p0
                      : p0(static_cast<int>(li), link.sender,
                           link.receiver, ci,
                           list_chan_[static_cast<std::size_t>(ci)]);
              // Same validation gen.bernoulli(p) performs before its
              // comparison against the (here pre-recorded) uniform
              // draw.
              WSAN_REQUIRE(p >= 0.0 && p <= 1.0,
                           "bernoulli requires p in [0, 1]");
              ++counts.cf_attempts;
              counts.cf_successes +=
                  (probe_u_[pi] < p && !probe_faulted) ? 1 : 0;
              energy.per_node_mj[static_cast<std::size_t>(
                  link.sender)] += em.tx_packet_mj;  // broadcast: no ACK
              if (rx_alive) {
                energy.per_node_mj[static_cast<std::size_t>(
                    link.receiver)] += em.rx_packet_mj;
              }
              ++energy.data_transmissions;
            }
          }
          // Warm-table reads above are cache hits; account them in
          // bulk rather than per probe on the hot path.
          if (p0_inline_ok_) obs_cache_hits_ += pi;
        }
      } else if (config_.probes_per_run > 0) {
        OBS_SPAN("sim.probe_loop");
        for (std::size_t li = 0; li < link_keys_.size(); ++li) {
          const auto& link = link_keys_[li];
          if (faults_.node_down(link.sender)) continue;  // mute
          const bool probe_faulted =
              faults_on_ && (faults_.node_down(link.receiver) ||
                             faults_.link_down(link.sender, link.receiver));
          auto& counts = counts_[li];
          for (int probe = 0; probe < config_.probes_per_run; ++probe) {
            // Inline of gen.uniform_int(0, ncl-1): identical rejection
            // loop consuming identical draws, with the range-dependent
            // threshold precomputed at setup.
            int ci;
            for (;;) {
              const std::uint64_t r = gen();
              if (r >= probe_threshold_) {
                ci = static_cast<int>(r % probe_range_);
                break;
              }
            }
            const channel_t ch = list_chan_[static_cast<std::size_t>(ci)];
            if (num_intf > 0) {
              if (batched_) {
                next_interferer_row();
              } else {
                field_.sample_active(gen, interferers_active_);
                if (run < config_.interferer_start_run)
                  std::fill(interferers_active_.begin(),
                            interferers_active_.end(), char{0});
              }
            }
            powers_.clear();
            powers_mw_.clear();
            for (int k = 0; k < num_intf; ++k) {
              if (!interferers_active_[static_cast<std::size_t>(k)])
                continue;
              if (!ext_overlap_[static_cast<std::size_t>(k) *
                                    static_cast<std::size_t>(ncl_) +
                                static_cast<std::size_t>(ci)])
                continue;
              const std::size_t pi =
                  static_cast<std::size_t>(k) *
                      static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(link.receiver);
              powers_.push_back(ext_power_[pi]);
              if (poly_rx_) powers_mw_.push_back(ext_power_mw_[pi]);
            }
            double p;
            if (powers_.empty()) {
              p = p0(static_cast<int>(li), link.sender, link.receiver,
                     ci, ch);
            } else {
              p = rx_prob<false>(
                  static_cast<int>(li), link.sender, link.receiver, ci,
                  ch,
                  link_signal<false>(static_cast<int>(li), link.sender,
                                     link.receiver, ci, ch),
                  0, powers_.size());
            }
            ++counts.cf_attempts;
            counts.cf_successes +=
                (gen.bernoulli(p) && !probe_faulted) ? 1 : 0;
            energy.per_node_mj[static_cast<std::size_t>(link.sender)] +=
                em.tx_packet_mj;  // broadcast: no ACK
            if (!faults_.node_down(link.receiver)) {
              energy.per_node_mj[static_cast<std::size_t>(
                  link.receiver)] += em.rx_packet_mj;
            }
            ++energy.data_transmissions;
            if (!powers_.empty() && !probe_faulted) {
              counts.loss_external +=
                  p0(static_cast<int>(li), link.sender, link.receiver,
                     ci, ch) -
                  p;
            }
          }
        }
      }

      // Flush this run's accumulators, in link_key order (== the
      // oracle's std::map iteration order).
      for (std::size_t li = 0; li < link_keys_.size(); ++li) {
        const auto& counts = counts_[li];
        if (counts.reuse_attempts == 0 && counts.cf_attempts == 0)
          continue;
        if (faults_.reports_withheld(link_keys_[li].sender)) continue;
        link_observations* obs = obs_cache_[li];
        if (obs == nullptr) {
          obs = &result.links[link_keys_[li]];
          obs_cache_[li] = obs;
        }
        if (counts.reuse_attempts > 0) {
          obs->reuse_samples.emplace_back(
              run, static_cast<double>(counts.reuse_successes) /
                       static_cast<double>(counts.reuse_attempts));
          obs->reuse_attempts += counts.reuse_attempts;
          obs->reuse_successes += counts.reuse_successes;
        }
        if (counts.cf_attempts > 0) {
          obs->cf_samples.emplace_back(
              run, static_cast<double>(counts.cf_successes) /
                       static_cast<double>(counts.cf_attempts));
          obs->cf_attempts += counts.cf_attempts;
          obs->cf_successes += counts.cf_successes;
        }
        obs->expected_loss_internal += counts.loss_internal;
        obs->expected_loss_external += counts.loss_external;
      }
    }

    finalize_result(result, flows_, released, delivered, config_);
    if (wsan::obs::enabled()) {
      wsan::obs::add_counter("sim.active_transmissions",
                             obs_active_transmissions_);
      wsan::obs::add_counter("sim.internal_interference_pairs",
                             obs_internal_pairs_);
      wsan::obs::add_counter("sim.rssi_cache_hits", obs_cache_hits_);
      wsan::obs::add_counter("sim.fade_kernels", obs_fade_kernels_);
    }
    return result;
  }

 private:
  std::size_t pair_offset(node_id a, node_id b) const {
    const node_id lo = a < b ? a : b;
    const node_id hi = a < b ? b : a;
    return static_cast<std::size_t>(lo) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(hi);
  }

  double drift(node_id a, node_id b, int ci, channel_t ch) {
    if (drift_zero_) return 0.0;
    const std::size_t pair = pair_offset(a, b);
    const std::size_t idx = pair * static_cast<std::size_t>(ncl_) +
                            static_cast<std::size_t>(ci);
    if (drift_ready_[idx]) {
      ++obs_cache_hits_;
      return drift_[idx];
    }
    drift_[idx] =
        batched_
            ? compute_drift_db_batched(config_, maintained_[pair] != 0, a,
                                       b, ch)
            : compute_drift_db(config_, maintained_[pair] != 0, a, b, ch);
    drift_ready_[idx] = 1;
    return drift_[idx];
  }

  /// Temporal fade for the current run: compute_fade_db's seed chain
  /// with its run-only prefix hoisted into fade_prefix_ (see run()).
  /// Oracle tier: the derived rng's Box-Muller collapsed into the
  /// spare-free shared kernel rng::first_normal — bit-identical to
  /// `sigma * rng(seed).normal()`. Batched tier: the same seed through
  /// the counter-based batch_normal element transform, so a lazy miss
  /// produces exactly what the bulk fill would have. Pure per (pair,
  /// channel) within a run, so live_rssi's coordinate cache absorbs
  /// repeats; a dedicated fade table was measured slower (the extra
  /// cache lines per miss cost more than the rare cross-direction
  /// reuse saved).
  double fade(node_id a, node_id b, channel_t ch) {
    ++obs_fade_kernels_;
    const std::uint64_t seed = fade_seed(fade_prefix_, a, b, ch);
    return batched_
               ? config_.temporal_fading_sigma_db * batch_normal(seed)
               : config_.temporal_fading_sigma_db * rng::first_normal(seed);
  }

  /// Reception probability under interference over the sub-range
  /// [begin, begin + count) of this slot's collected powers,
  /// dispatched per tier. Oracle: phy::reception_probability verbatim
  /// over powers_ (bit-identity). Batched: the same standalone x
  /// capture-sigmoid product with every libm call eliminated — the
  /// standalone sigmoid is the cached p0 (dense table or epoch memo),
  /// the SINR denominator sums the pre-converted milliwatt mirror
  /// powers_mw_ (interferer conversions are memoized at their source:
  /// ext_power_mw_ at setup, cross_mw_ per run), and mw_to_dbm plus
  /// the capture sigmoid go through the branch-free poly_log /
  /// batch_sigmoid kernels. Elementwise pure and deterministic per
  /// (config, seed); within ~1e-13 relative of the oracle away from
  /// the sigmoid clamp rails, which the tier's statistical-equivalence
  /// gate absorbs. poly_rx_ is false when the transition widths failed
  /// setup validation, so the batched tier still throws exactly as
  /// the oracle does.
  template <bool kLog>
  double rx_prob(int li, node_id sender, node_id receiver, int ci,
                 channel_t ch, double signal, std::size_t begin,
                 std::size_t count) {
    if (!poly_rx_)
      return phy::reception_probability(capture_, signal,
                                        powers_.data() + begin, count);
    double denom_mw = noise_mw_;
    const double* mw = powers_mw_.data() + begin;
    for (std::size_t k = 0; k < count; ++k) denom_mw += mw[k];
    const double sinr =
        signal - batch_detail::poly_log(denom_mw) * k_10_over_ln10;
    return p0<kLog>(li, sender, receiver, ci, ch) *
           batch_sigmoid((sinr - cap_thresh_) / cap_scale_);
  }

  /// Marks a (link, channel) coordinate as used by this run's slot
  /// loop. The per-run used set feeds the next same-class run's
  /// prefill: the (slot, offset) -> channel mapping repeats with
  /// period |channels|, and the set of coordinates that actually fire
  /// (primaries plus the retries whose primary failed) is far smaller
  /// than the union of all entry coordinates, so tracking last use
  /// keeps the prefill from wasting kernels on retries that rarely
  /// fire.
  void mark_used(int id, int packed) {
    char& mark = run_used_mark_[static_cast<std::size_t>(id)];
    if (!mark) {
      mark = 1;
      run_used_ids_.push_back(packed);
    }
  }

  /// Batch fill of one coordinate's signal and clean reception
  /// probability (prefill and probe-batch path; requires
  /// p0_inline_ok_). Iterations over distinct coordinates are
  /// independent, so consecutive fills pipeline the fade kernels'
  /// log/cos chains instead of paying their serial latency per miss.
  /// `packed` is (li << 8) | ci — channel positions fit 8 bits — so
  /// unpacking is shift/mask instead of division by a runtime ncl.
  void fill_coord(int packed) {
    const int li = packed >> 8;
    const int ci = packed & 255;
    coord_cache& c =
        link_coords_[static_cast<std::size_t>(li) *
                         static_cast<std::size_t>(ncl_) +
                     static_cast<std::size_t>(ci)];
    const link_key& key = link_keys_[static_cast<std::size_t>(li)];
    const channel_t ch = list_chan_[static_cast<std::size_t>(ci)];
    if (!c.base_ready) {
      c.base = topo_.rssi_dbm(key.sender, key.receiver, ch) +
               drift(key.sender, key.receiver, ci, ch);
      c.base_ready = 1;
    }
    c.sig = c.base + (fade_on_ ? fade(key.sender, key.receiver, ch) : 0.0);
    c.sig_epoch = epoch_;
    c.p0 = phy::clamped_sigmoid((c.sig - p0_sens_) / p0_scale_);
    c.p0_epoch = epoch_;
  }

  /// Batched-tier setup pass: fills the drift table for every
  /// (schedule link, channel) coordinate with one vectorized normal
  /// batch over the drift seed chains. Link pairs are maintained by
  /// construction (the bitmap is built from the same link set), so the
  /// sigma is uniform and the intermittence draw does not apply; the
  /// quadratic non-link pairs that cross_rssi touches stay lazy and go
  /// through the batched element transform on miss, producing the same
  /// values this pass would (compute_drift_db_batched is the element
  /// function of this batch).
  void prefill_drift_batched() {
    const double sigma = config_.maintained_drift_sigma_db;
    std::vector<std::uint64_t> seeds;
    std::vector<std::size_t> idxs;
    seeds.reserve(coord_count_);
    idxs.reserve(coord_count_);
    for (const auto& key : link_keys_) {
      const std::size_t pair = pair_offset(key.sender, key.receiver);
      const std::uint64_t pair_state =
          drift_pair_state(config_.seed, key.sender, key.receiver);
      for (int ci = 0; ci < ncl_; ++ci) {
        const std::size_t idx = pair * static_cast<std::size_t>(ncl_) +
                                static_cast<std::size_t>(ci);
        if (drift_ready_[idx]) continue;  // both link directions share it
        drift_ready_[idx] = 1;
        if (sigma <= 0.0) {
          drift_[idx] = 0.0;  // the element function's early-out
          continue;
        }
        seeds.push_back(drift_chan_seed(
            pair_state, list_chan_[static_cast<std::size_t>(ci)]));
        idxs.push_back(idx);
      }
    }
    if (seeds.empty()) return;
    std::vector<double> vals(seeds.size());
    batch_normals(seeds.data(), seeds.size(), vals.data());
    for (std::size_t j = 0; j < idxs.size(); ++j)
      drift_[idxs[j]] = sigma * vals[j];
  }

  /// Batched-tier interferer activity: the duty-cycle Bernoullis for a
  /// whole run are generated here in one vectorized uniform pass from
  /// a derived per-run stream — derive_seed(seed, interferer stream,
  /// run) — instead of draw-by-draw from the main gen stream. Row r is
  /// the activity vector handed out by the r-th sample point of the
  /// run (slot loop first, then probes), so the process keeps the
  /// oracle's structure: independent Bernoulli(duty_cycle) per
  /// interferer per sample point, deterministic per (config, run).
  void refresh_interferer_rows(int run) {
    intf_cursor_ = 0;
    const std::size_t total = intf_u_.size();
    if (run < config_.interferer_start_run) {
      std::fill(intf_active_.begin(), intf_active_.end(), char{0});
      return;
    }
    batch_uniform01s(derive_seed(config_.seed, k_interferer_stream,
                                 static_cast<std::uint64_t>(run)),
                     total, intf_u_.data());
    const std::size_t num_intf = intf_duty_.size();
    for (std::size_t i = 0; i < total; ++i) {
      intf_active_[i] =
          intf_u_[i] < intf_duty_[i % num_intf] ? char{1} : char{0};
    }
  }

  /// Copies the next pre-generated activity row into the shared
  /// interferers_active_ scratch (same buffer both tiers read).
  void next_interferer_row() {
    const std::size_t num_intf = intf_duty_.size();
    const char* row = intf_active_.data() + intf_cursor_ * num_intf;
    ++intf_cursor_;
    interferers_active_.assign(row, row + num_intf);
  }

  /// Effective RSSI at experiment time for a schedule link: same sum,
  /// same order as the oracle's live_rssi (base + drift + fade),
  /// cached per (link, channel position, fade epoch). kLog tracks the
  /// coordinate in the per-run used set feeding the hopping-class
  /// prefill (slot-loop callers only; probe channels are uniform
  /// draws with no cross-run structure).
  template <bool kLog>
  double link_signal(int li, node_id sender, node_id receiver, int ci,
                     channel_t ch) {
    const int id = li * ncl_ + ci;
    if (dense_on_) return dense_sig_[static_cast<std::size_t>(id)];
    coord_cache& c = link_coords_[static_cast<std::size_t>(id)];
    if constexpr (kLog) {
      if (prefill_on_) mark_used(id, (li << 8) | ci);
    }
    if (c.sig_epoch == epoch_) {
      ++obs_cache_hits_;
      return c.sig;
    }
    // The oracle sums (rssi + drift) + fade; the run-invariant left
    // half is cached so a fade epoch rollover is one add plus the
    // fade kernel.
    if (!c.base_ready) {
      c.base = topo_.rssi_dbm(sender, receiver, ch) +
               drift(sender, receiver, ci, ch);
      c.base_ready = 1;
    }
    c.sig = c.base + (fade_on_ ? fade(sender, receiver, ch) : 0.0);
    c.sig_epoch = epoch_;
    return c.sig;
  }

  /// Effective RSSI of a concurrent sender into another link's
  /// receiver (in-network interference cross product). These pairs are
  /// not schedule links, so the link-coordinate table has no slot for
  /// them, but the sum is still pure per (sender, receiver, position)
  /// within a run — the same collisions repeat every period of a
  /// hyperperiod, so an epoch-gated memo over the directed pair space
  /// turns all repeats into a table read (the first touch computes the
  /// identical oracle sum, so bit-identity is unaffected). The table
  /// is allocated on first collision: contention-free schedules never
  /// pay the quadratic footprint.
  std::size_t cross_index(node_id sender, node_id receiver,
                          int ci) const {
    return (static_cast<std::size_t>(sender) *
                static_cast<std::size_t>(n_) +
            static_cast<std::size_t>(receiver)) *
               static_cast<std::size_t>(ncl_) +
           static_cast<std::size_t>(ci);
  }

  double cross_rssi(node_id sender, node_id receiver, int ci,
                    channel_t ch) {
    if (cross_epoch_.empty()) {
      const std::size_t cells = static_cast<std::size_t>(n_) *
                                static_cast<std::size_t>(n_) *
                                static_cast<std::size_t>(ncl_);
      // Uninitialized like drift_: the zeroed epoch bytes gate reads.
      cross_sig_.reset(new double[cells]);
      if (poly_rx_) cross_mw_.reset(new double[cells]);
      cross_epoch_.assign(cells, 0);
    }
    const std::size_t idx = cross_index(sender, receiver, ci);
    if (cross_epoch_[idx] == epoch_) {
      ++obs_cache_hits_;
      return cross_sig_[idx];
    }
    const double sig = topo_.rssi_dbm(sender, receiver, ch) +
                       drift(sender, receiver, ci, ch) +
                       (fade_on_ ? fade(sender, receiver, ch) : 0.0);
    cross_sig_[idx] = sig;
    // The poly SINR path consumes interference in milliwatts; convert
    // once per (pair, position, run) here instead of per reception.
    if (poly_rx_)
      cross_mw_[idx] = batch_detail::poly_exp(sig * k_ln10_over_10);
    cross_epoch_[idx] = epoch_;
    return sig;
  }

  /// Reception probability with zero concurrent interference — the
  /// common case on contention-free cells and probes. Bit-identical to
  /// phy::reception_probability(capture, live_rssi, {}) by construction
  /// (the empty-interference path of the same function), cached like
  /// the signal itself.
  template <bool kLog = false>
  double p0(int li, node_id sender, node_id receiver, int ci,
            channel_t ch) {
    const int id = li * ncl_ + ci;
    if (dense_on_) return dense_p0_[static_cast<std::size_t>(id)];
    coord_cache& c = link_coords_[static_cast<std::size_t>(id)];
    if constexpr (kLog) {
      if (prefill_on_) mark_used(id, (li << 8) | ci);
    }
    if (c.p0_epoch == epoch_) {
      ++obs_cache_hits_;
      return c.p0;
    }
    const double signal =
        link_signal<false>(li, sender, receiver, ci, ch);
    if (p0_inline_ok_) {
      // Inline of phy::reception_probability's zero-interference path,
      // i.e. prr_from_rssi: identical expressions with the parameter
      // checks and the sigmoid scale hoisted to setup. The batched
      // tier routes the sigmoid through the batch element kernel so a
      // lazy miss and a bulk fill produce the same value.
      const double x = (signal - p0_sens_) / p0_scale_;
      c.p0 = batched_ ? batch_sigmoid(x) : phy::clamped_sigmoid(x);
    } else {
      c.p0 = phy::reception_probability(capture_, signal, nullptr, 0);
    }
    c.p0_epoch = epoch_;
    return c.p0;
  }

  const topo::topology& topo_;
  const std::vector<flow::flow>& flows_;
  const sim_config& config_;
  const int n_;
  const int ncl_;  ///< channel list length (== schedule offsets)
  const slot_t hp_;
  interference_field field_;
  fault_state faults_;
  const bool faults_on_;  ///< plan non-empty: gates the link_down calls
  phy::capture_params capture_;

  std::vector<fast_entry> entries_;  ///< all transmissions, slot-major
  std::vector<int> slot_begin_;  ///< slot -> [begin, end) into entries_
  std::vector<link_key> link_keys_;  ///< dense link index -> key, sorted
  std::vector<char> maintained_;     ///< unordered pair bitmap (lo*n+hi)
  std::vector<channel_t> list_chan_;  ///< list position -> channel value

  bool drift_zero_ = false;
  bool fade_on_ = false;
  // Memo tables, all keyed by channel-list position. The drift double
  // array is allocated uninitialized and gated by its ready bytes; the
  // coordinate structs are value-initialized (epochs at 0 gate every
  // read).
  std::unique_ptr<double[]> drift_;  ///< (pair, position) -> drift dB
  std::vector<char> drift_ready_;
  // Cross-interference memo (directed pair, position), allocated on
  // first collision; epoch-gated like the link coordinate caches.
  std::unique_ptr<double[]> cross_sig_;
  std::unique_ptr<double[]> cross_mw_;  ///< poly path: dbm_to_mw memo
  std::vector<std::uint32_t> cross_epoch_;
  std::unique_ptr<coord_cache[]> link_coords_;  ///< (link, position)
  bool p0_inline_ok_ = false;  ///< transition widths validated at setup
  double p0_scale_ = 1.0;      ///< link transition width / 4
  double p0_sens_ = 0.0;       ///< link sensitivity dBm
  std::uint64_t probe_range_ = 1;      ///< |channels| for probe draws
  std::uint64_t probe_threshold_ = 0;  ///< Lemire rejection threshold
  fade_run_prefix fade_prefix_;  ///< per-run fade seed chain prefix
  std::uint32_t epoch_ = 1;  ///< current cache epoch (run+1 with fading)
  int run_class_ = 0;        ///< (run * hp) mod |channels|
  std::size_t coord_count_ = 0;  ///< |links| * |channels|
  // Per-hopping-class prefill logs: the coordinate working set of the
  // last run in each class, batch-filled at the start of the next run
  // of the same class (the (slot, offset) -> channel mapping repeats
  // with period |channels|, so the working set is near-stationary).
  bool prefill_on_ = false;  ///< fade_on_ && p0_inline_ok_
  std::vector<std::vector<int>> class_log_;  ///< class -> packed ids
  std::vector<char> run_used_mark_;  ///< per-run coord usage bitmap
  std::vector<int> run_used_ids_;    ///< packed ids used this run
  // Probe-batch scratch (pre-reserved): recorded channel picks and
  // Bernoulli uniforms, and the deduplicated coordinate fill queue.
  std::vector<int> probe_ci_;
  std::vector<double> probe_u_;
  std::vector<int> miss_queue_;
  std::vector<int> prog_offset_;     ///< flow -> progress_ base index
  std::vector<int> flow_instances_;  ///< flow -> instances per hyperperiod
  std::vector<int> route_len_;       ///< flow -> route length
  std::vector<int> progress_;  ///< flat (flow, instance) hop progress

  std::vector<char> ext_overlap_;   ///< (interferer, list position)
  std::vector<double> ext_power_;   ///< (interferer, node) -> dBm
  std::vector<double> ext_power_mw_;  ///< poly path: same table in mW

  // Reusable per-slot scratch (pre-reserved, cleared in place).
  std::vector<const fast_entry*> active_;
  std::vector<int> active_chan_pos_;  ///< active entry -> list position
  std::vector<channel_t> active_chan_val_;
  std::vector<char> success_;
  std::vector<double> powers_;
  std::vector<double> powers_mw_;  ///< poly path: powers_ mirror in mW
  std::vector<char> interferers_active_;

  // Dense per-link accumulators and result-map pointer cache.
  std::vector<link_run_counts> counts_;
  std::vector<link_observations*> obs_cache_;

  // Batched-tier state (DESIGN.md §10): bulk-fill scratch and the
  // per-run pre-generated interferer activity table. All sized at
  // setup; the steady-state loops never allocate in either tier.
  bool batched_ = false;  ///< config.fade_kernel == batched
  bool poly_rx_ = false;   ///< batched && p0_inline_ok_: poly SINR path
  double cap_thresh_ = 0.0;  ///< capture threshold dB
  double cap_scale_ = 1.0;   ///< capture transition width / 4
  double noise_mw_ = 0.0;    ///< poly_exp image of the noise floor, mW
  std::vector<double> probe_uu_;  ///< derived probe stream scratch
  bool dense_on_ = false;  ///< batched && fade_on_ && p0_inline_ok_
  std::vector<std::uint64_t> dense_pk_;  ///< pair key per coordinate
  std::vector<std::uint64_t> dense_ch_;  ///< channel per coordinate
  std::vector<double> dense_base_;  ///< rssi + drift per coordinate
  std::vector<double> dense_sig_;   ///< this run's signals
  std::vector<double> dense_p0_;    ///< this run's clean PRRs
  std::vector<char> intf_active_;  ///< (sample row, interferer) activity
  std::vector<double> intf_u_;     ///< uniform scratch for the rows
  std::vector<double> intf_duty_;  ///< interferer -> duty cycle
  std::size_t intf_cursor_ = 0;    ///< next unread activity row

  std::uint64_t obs_active_transmissions_ = 0;
  std::uint64_t obs_internal_pairs_ = 0;
  std::uint64_t obs_cache_hits_ = 0;
  std::uint64_t obs_fade_kernels_ = 0;
};

}  // namespace

/// Temporal fading: deterministic per (unordered pair, channel, run).
/// Fast multipath variation is frequency-selective, which is exactly
/// why TSCH hops channels: a retry on a different channel sees an
/// independent fade, so engineered links with retries ride through it,
/// while a single shared cell pinned to a faded channel does not.
double compute_fade_db(const sim_config& config, int run, node_id a,
                       node_id b, channel_t ch) {
  if (config.temporal_fading_sigma_db <= 0.0) return 0.0;
  rng pair_gen(fade_seed(fade_prefix(config.seed, run), a, b, ch));
  return pair_gen.normal(0.0, config.temporal_fading_sigma_db);
}

/// Calibration drift: static per (unordered pair, channel) offset
/// between the measured topology (which produced the schedule's graphs)
/// and the RF world the schedule actually runs in. `maintained` is
/// whether the pair carries scheduled traffic (re-measured every
/// health-report epoch).
double compute_drift_db(const sim_config& config, bool maintained,
                        node_id a, node_id b, channel_t ch) {
  const std::uint64_t pair_state = drift_pair_state(config.seed, a, b);
  double u = 0.0;
  if (!maintained) {
    std::uint64_t s = pair_state;
    rng pair_gen(splitmix64(s));
    u = pair_gen.uniform01();
  }
  const double sigma = drift_sigma(config, maintained, u);
  if (sigma <= 0.0) return 0.0;
  rng chan_gen(drift_chan_seed(pair_state, ch));
  return chan_gen.normal(0.0, sigma);
}

void validate_sim_config(const sim_config& config) {
  WSAN_REQUIRE(config.runs >= 1, "need at least one run");
  WSAN_REQUIRE(config.probes_per_run >= 0,
               "probe count must be non-negative");
  WSAN_REQUIRE(config.interferer_start_run >= 0,
               "interferer start run must be non-negative");
  const auto valid_sigma = [](double sigma) {
    return std::isfinite(sigma) && sigma >= 0.0;
  };
  WSAN_REQUIRE(valid_sigma(config.calibration_drift_sigma_db),
               "calibration drift sigma must be finite and non-negative");
  WSAN_REQUIRE(valid_sigma(config.maintained_drift_sigma_db),
               "maintained drift sigma must be finite and non-negative");
  WSAN_REQUIRE(valid_sigma(config.intermittent_sigma_db),
               "intermittent sigma must be finite and non-negative");
  WSAN_REQUIRE(valid_sigma(config.temporal_fading_sigma_db),
               "temporal fading sigma must be finite and non-negative");
  WSAN_REQUIRE(std::isfinite(config.intermittent_fraction) &&
                   config.intermittent_fraction >= 0.0 &&
                   config.intermittent_fraction <= 1.0,
               "intermittent fraction must be in [0, 1]");
  WSAN_REQUIRE(std::isfinite(config.capture_threshold_db),
               "capture threshold must be finite");
  WSAN_REQUIRE(std::isfinite(config.capture_transition_db) &&
                   config.capture_transition_db >= 0.0,
               "capture transition width must be finite and non-negative");
  validate_fault_plan(config.faults);
}

sim_result run_simulation(const topo::topology& topo,
                          const tsch::schedule& sched,
                          const std::vector<flow::flow>& flows,
                          const std::vector<channel_t>& channels,
                          const sim_config& config) {
  OBS_SPAN("sim.run_simulation");
  WSAN_REQUIRE(!flows.empty(), "flow set must be non-empty");
  WSAN_REQUIRE(!channels.empty(), "channel set must be non-empty");
  WSAN_REQUIRE(static_cast<int>(channels.size()) == sched.num_offsets(),
               "channel list size must equal the schedule's offset count");
  validate_sim_config(config);
  WSAN_REQUIRE(config.use_fast_path ||
                   config.fade_kernel == fade_kernel_kind::oracle,
               "the batched fade-kernel tier is a mode of the fast "
               "engine; the naive engine is the bit-identity oracle");

  if (!config.use_fast_path)
    return run_simulation_naive(topo, sched, flows, channels, config);
  fast_engine engine(topo, sched, flows, channels, config);
  return engine.run();
}

}  // namespace wsan::sim
