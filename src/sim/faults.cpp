#include "sim/faults.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "obs/events.h"

namespace wsan::sim {

namespace {

void check_interval(int start, int end, const std::string& what) {
  WSAN_REQUIRE(start >= 0, what + ": start run must be non-negative");
  WSAN_REQUIRE(end == -1 || end > start,
               what + ": end run must be -1 or after the start run");
}

void check_node(node_id node, int num_nodes, const std::string& what) {
  WSAN_REQUIRE(node >= 0, what + ": node id must be non-negative");
  if (num_nodes >= 0)
    WSAN_REQUIRE(node < num_nodes, what + ": node id out of range");
}

/// True iff [start, end) (end == -1 meaning infinity) contains run.
bool interval_contains(int start, int end, int run) {
  return run >= start && (end == -1 || run < end);
}

/// Intersects [start, end) with the window [first, first + count) and
/// shifts into window-local indices. Returns false when disjoint.
bool shift_interval(int& start, int& end, int first, int count) {
  if (end != -1 && end <= first) return false;
  if (start >= first + count) return false;
  start = std::max(start - first, 0);
  if (end != -1) end = std::min(end - first, count);
  return true;
}

}  // namespace

void validate_fault_plan(const fault_plan& plan, int num_nodes) {
  for (const auto& c : plan.crashes) {
    check_node(c.node, num_nodes, "node crash");
    check_interval(c.start_run, c.restart_run, "node crash");
  }
  for (const auto& l : plan.link_failures) {
    check_node(l.sender, num_nodes, "link failure");
    check_node(l.receiver, num_nodes, "link failure");
    WSAN_REQUIRE(l.sender != l.receiver,
                 "link failure: sender and receiver must differ");
    check_interval(l.start_run, l.end_run, "link failure");
  }
  for (const auto& s : plan.suppressions) {
    check_node(s.node, num_nodes, "report suppression");
    check_interval(s.start_run, s.end_run, "report suppression");
  }
  for (const auto& j : plan.jams) {
    WSAN_REQUIRE(j.slot >= 0, "jammed slot: slot must be non-negative");
    check_interval(j.start_run, j.end_run, "jammed slot");
  }
}

fault_plan slice_fault_plan(const fault_plan& plan, int first_run,
                            int num_runs) {
  WSAN_REQUIRE(first_run >= 0, "window start must be non-negative");
  WSAN_REQUIRE(num_runs >= 0, "window length must be non-negative");
  // Reject malformed plans up front: slicing an interval whose end
  // precedes its start would silently produce a plausible-looking but
  // meaningless sub-plan.
  validate_fault_plan(plan);
  fault_plan out;
  if (num_runs == 0) return out;
  for (auto c : plan.crashes) {
    if (shift_interval(c.start_run, c.restart_run, first_run, num_runs))
      out.crashes.push_back(c);
  }
  for (auto l : plan.link_failures) {
    if (shift_interval(l.start_run, l.end_run, first_run, num_runs))
      out.link_failures.push_back(l);
  }
  for (auto s : plan.suppressions) {
    if (shift_interval(s.start_run, s.end_run, first_run, num_runs))
      out.suppressions.push_back(s);
  }
  for (auto j : plan.jams) {
    if (shift_interval(j.start_run, j.end_run, first_run, num_runs))
      out.jams.push_back(j);
  }
  return out;
}

void save_fault_plan(const fault_plan& plan, std::ostream& os) {
  os << "faultplan "
     << plan.crashes.size() + plan.link_failures.size() +
            plan.suppressions.size() + plan.jams.size()
     << "\n";
  for (const auto& c : plan.crashes)
    os << "crash " << c.node << ' ' << c.start_run << ' ' << c.restart_run
       << "\n";
  for (const auto& l : plan.link_failures)
    os << "linkfail " << l.sender << ' ' << l.receiver << ' ' << l.start_run
       << ' ' << l.end_run << "\n";
  for (const auto& s : plan.suppressions)
    os << "suppress " << s.node << ' ' << s.start_run << ' ' << s.end_run
       << "\n";
  for (const auto& j : plan.jams)
    os << "jam " << j.slot << ' ' << j.start_run << ' ' << j.end_run
       << "\n";
}

fault_plan load_fault_plan(std::istream& is) {
  fault_plan plan;
  bool have_header = false;
  std::size_t declared = 0;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    const std::string where = " at line " + std::to_string(line_no);
    if (kind == "faultplan") {
      WSAN_REQUIRE(!have_header, "duplicate faultplan header" + where);
      ls >> declared;
      WSAN_REQUIRE(static_cast<bool>(ls), "malformed header" + where);
      have_header = true;
    } else if (kind == "crash") {
      WSAN_REQUIRE(have_header, "crash record before header" + where);
      node_crash c;
      ls >> c.node >> c.start_run >> c.restart_run;
      WSAN_REQUIRE(static_cast<bool>(ls), "malformed crash record" + where);
      plan.crashes.push_back(c);
    } else if (kind == "linkfail") {
      WSAN_REQUIRE(have_header, "linkfail record before header" + where);
      link_failure l;
      ls >> l.sender >> l.receiver >> l.start_run >> l.end_run;
      WSAN_REQUIRE(static_cast<bool>(ls),
                   "malformed linkfail record" + where);
      plan.link_failures.push_back(l);
    } else if (kind == "suppress") {
      WSAN_REQUIRE(have_header, "suppress record before header" + where);
      report_suppression s;
      ls >> s.node >> s.start_run >> s.end_run;
      WSAN_REQUIRE(static_cast<bool>(ls),
                   "malformed suppress record" + where);
      plan.suppressions.push_back(s);
    } else if (kind == "jam") {
      WSAN_REQUIRE(have_header, "jam record before header" + where);
      jammed_slot j;
      ls >> j.slot >> j.start_run >> j.end_run;
      WSAN_REQUIRE(static_cast<bool>(ls), "malformed jam record" + where);
      plan.jams.push_back(j);
    } else {
      WSAN_REQUIRE(false, "unknown record kind '" + kind + "'" + where);
    }
  }
  WSAN_REQUIRE(have_header, "stream contained no faultplan header");
  WSAN_REQUIRE(plan.crashes.size() + plan.link_failures.size() +
                       plan.suppressions.size() + plan.jams.size() ==
                   declared,
               "fault record count does not match the header");
  validate_fault_plan(plan);
  return plan;
}

void save_fault_plan_file(const fault_plan& plan, const std::string& path) {
  std::ofstream os(path);
  WSAN_REQUIRE(os.good(), "cannot open file for writing: " + path);
  save_fault_plan(plan, os);
}

fault_plan load_fault_plan_file(const std::string& path) {
  std::ifstream is(path);
  WSAN_REQUIRE(is.good(), "cannot open file for reading: " + path);
  return load_fault_plan(is);
}

fault_state::fault_state(const fault_plan& plan, int num_nodes)
    : plan_(plan), any_(!plan.empty()) {
  WSAN_REQUIRE(num_nodes >= 0, "node count must be non-negative");
  validate_fault_plan(plan_, num_nodes);
  node_down_.assign(static_cast<std::size_t>(num_nodes), 0);
  withheld_.assign(static_cast<std::size_t>(num_nodes), 0);
  slot_t max_slot = -1;
  for (const auto& j : plan_.jams) max_slot = std::max(max_slot, j.slot);
  jammed_.assign(static_cast<std::size_t>(max_slot + 1), 0);
}

void fault_state::begin_run(int run) {
  if (!any_) return;
  std::fill(node_down_.begin(), node_down_.end(), 0);
  std::fill(withheld_.begin(), withheld_.end(), 0);
  std::fill(jammed_.begin(), jammed_.end(), 0);
  links_down_.clear();
  // Fault-plan executions are logged once, at the run where each fault
  // switches on — not on every run it stays active.
  for (const auto& c : plan_.crashes) {
    if (interval_contains(c.start_run, c.restart_run, run)) {
      node_down_[static_cast<std::size_t>(c.node)] = 1;
      withheld_[static_cast<std::size_t>(c.node)] = 1;
      if (run == c.start_run && obs::events_enabled())
        obs::emit(obs::severity::warning, "sim", "fault_node_crash",
                  {{"node", c.node},
                   {"run", run},
                   {"restart_run", c.restart_run}});
    }
  }
  for (const auto& s : plan_.suppressions) {
    if (interval_contains(s.start_run, s.end_run, run)) {
      withheld_[static_cast<std::size_t>(s.node)] = 1;
      if (run == s.start_run && obs::events_enabled())
        obs::emit(obs::severity::warning, "sim",
                  "fault_report_suppression",
                  {{"node", s.node}, {"run", run}, {"end_run", s.end_run}});
    }
  }
  for (const auto& l : plan_.link_failures) {
    if (interval_contains(l.start_run, l.end_run, run)) {
      links_down_.emplace_back(l.sender, l.receiver);
      if (run == l.start_run && obs::events_enabled())
        obs::emit(obs::severity::warning, "sim", "fault_link_failure",
                  {{"sender", l.sender},
                   {"receiver", l.receiver},
                   {"run", run},
                   {"end_run", l.end_run}});
    }
  }
  for (const auto& j : plan_.jams) {
    if (interval_contains(j.start_run, j.end_run, run)) {
      jammed_[static_cast<std::size_t>(j.slot)] = 1;
      if (run == j.start_run && obs::events_enabled())
        obs::emit(obs::severity::warning, "sim", "fault_jammed_slot",
                  {{"slot", j.slot},
                   {"run", run},
                   {"end_run", j.end_run}});
    }
  }
}

bool fault_state::link_down(node_id sender, node_id receiver) const {
  if (links_down_.empty()) return false;
  for (const auto& [s, r] : links_down_)
    if (s == sender && r == receiver) return true;
  return false;
}

}  // namespace wsan::sim
