#include "flow/flow_generator.h"

#include <algorithm>
#include <stdexcept>

#include "common/error.h"
#include "flow/router.h"

namespace wsan::flow {

slot_t period_slots_for_exp(int exp) {
  WSAN_REQUIRE(exp >= -2 && exp <= 10,
               "period exponent must be in [-2, 10] for whole 10 ms slots");
  if (exp >= 0) return k_slots_per_second << exp;
  return k_slots_per_second >> (-exp);
}

std::vector<node_id> pick_access_points(const graph::graph& comm,
                                        int count) {
  WSAN_REQUIRE(count >= 1 && count <= comm.num_nodes(),
               "access point count out of range");
  std::vector<node_id> ids(static_cast<std::size_t>(comm.num_nodes()));
  for (int i = 0; i < comm.num_nodes(); ++i)
    ids[static_cast<std::size_t>(i)] = i;
  std::stable_sort(ids.begin(), ids.end(), [&](node_id a, node_id b) {
    if (comm.degree(a) != comm.degree(b))
      return comm.degree(a) > comm.degree(b);
    return a < b;
  });
  ids.resize(static_cast<std::size_t>(count));
  return ids;
}

flow_set generate_flow_set(const graph::graph& comm,
                           const flow_set_params& params, rng& gen,
                           const etx_weights* weights) {
  WSAN_REQUIRE(params.num_flows >= 1, "flow count must be positive");
  WSAN_REQUIRE(params.period_min_exp <= params.period_max_exp,
               "period exponent range is inverted");
  WSAN_REQUIRE(params.metric == route_metric::hop_count ||
                   weights != nullptr,
               "ETX routing requires etx_weights");
  WSAN_REQUIRE(comm.num_nodes() >= params.num_access_points + 2,
               "graph too small for access points plus field devices");

  flow_set result;
  result.access_points =
      pick_access_points(comm, params.num_access_points);

  std::vector<node_id> field_devices;
  for (node_id id = 0; id < comm.num_nodes(); ++id) {
    if (std::find(result.access_points.begin(), result.access_points.end(),
                  id) == result.access_points.end())
      field_devices.push_back(id);
  }

  const long long max_attempts =
      200LL * static_cast<long long>(params.num_flows) + 1000;
  long long attempts = 0;
  while (static_cast<int>(result.flows.size()) < params.num_flows) {
    if (++attempts > max_attempts)
      throw std::runtime_error(
          "flow generation failed: could not find routable "
          "source/destination pairs — is the communication graph "
          "connected?");
    const node_id src = gen.pick(field_devices);
    const node_id dst = gen.pick(field_devices);
    if (src == dst) continue;

    std::optional<route_result> route;
    if (params.type == traffic_type::peer_to_peer) {
      route = params.metric == route_metric::hop_count
                  ? route_peer_to_peer(comm, src, dst)
                  : route_peer_to_peer_etx(comm, *weights, src, dst);
    } else {
      route = params.metric == route_metric::hop_count
                  ? route_centralized(comm, src, dst,
                                      result.access_points)
                  : route_centralized_etx(comm, *weights, src, dst,
                                          result.access_points);
    }
    if (!route || route->links.empty()) continue;

    flow f;
    f.id = static_cast<flow_id>(result.flows.size());
    f.source = src;
    f.destination = dst;
    f.type = params.type;
    f.route = std::move(route->links);
    f.uplink_links = route->uplink_links;
    const int exp = static_cast<int>(gen.uniform_int(
        params.period_min_exp, params.period_max_exp));
    f.period = period_slots_for_exp(exp);
    // Deadline uniform in [2^(j-1), 2^j] seconds = [P/2, P] slots.
    f.deadline =
        static_cast<slot_t>(gen.uniform_int(f.period / 2, f.period));
    validate_flow(f);
    result.flows.push_back(std::move(f));
  }

  assign_priorities(result.flows, params.priority);
  return result;
}

}  // namespace wsan::flow
