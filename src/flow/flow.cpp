#include "flow/flow.h"

#include <numeric>

#include "common/error.h"

namespace wsan::flow {

std::string to_string(traffic_type type) {
  switch (type) {
    case traffic_type::centralized:
      return "centralized";
    case traffic_type::peer_to_peer:
      return "peer-to-peer";
  }
  WSAN_CHECK(false, "unknown traffic type");
}

int flow::instances_in(slot_t hp) const {
  WSAN_REQUIRE(period > 0, "flow period must be positive");
  WSAN_REQUIRE(hp % period == 0, "hyperperiod must be a period multiple");
  return hp / period;
}

slot_t hyperperiod(const std::vector<flow>& flows) {
  WSAN_REQUIRE(!flows.empty(), "hyperperiod of an empty flow set");
  slot_t hp = 1;
  for (const auto& f : flows) {
    WSAN_REQUIRE(f.period > 0, "flow period must be positive");
    hp = std::lcm(hp, f.period);
  }
  return hp;
}

void validate_flow(const flow& f) {
  WSAN_REQUIRE(f.period > 0, "flow period must be positive");
  WSAN_REQUIRE(f.deadline > 0 && f.deadline <= f.period,
               "deadline must satisfy 0 < D <= P");
  WSAN_REQUIRE(!f.route.empty(), "flow route must be non-empty");
  WSAN_REQUIRE(f.route.front().sender == f.source,
               "route must start at the source");
  WSAN_REQUIRE(f.route.back().receiver == f.destination,
               "route must end at the destination");
  WSAN_REQUIRE(f.uplink_links >= 0 &&
                   f.uplink_links <= static_cast<int>(f.route.size()),
               "uplink segment length out of range");
  for (std::size_t i = 0; i < f.route.size(); ++i) {
    WSAN_REQUIRE(f.route[i].sender != f.route[i].receiver,
                 "route link endpoints must differ");
    // Continuity within a segment; the uplink/downlink boundary of a
    // centralized flow is bridged by the wired gateway, so continuity is
    // not required across it.
    if (i + 1 < f.route.size() &&
        static_cast<int>(i + 1) != f.uplink_links) {
      WSAN_REQUIRE(f.route[i].receiver == f.route[i + 1].sender,
                   "route links must be contiguous");
    }
  }
}

void shift_node_ids(std::vector<flow>& flows, node_id offset) {
  WSAN_REQUIRE(offset >= 0, "offset must be non-negative");
  for (auto& f : flows) {
    f.source += offset;
    f.destination += offset;
    for (auto& l : f.route) {
      l.sender += offset;
      l.receiver += offset;
    }
  }
}

}  // namespace wsan::flow
