// Random flow-set generation following the paper's workload recipe
// (Section VII): random distinct source/destination field devices, two
// access points chosen as the highest-degree nodes, harmonic power-of-two
// periods drawn uniformly from [2^x, 2^y] seconds, and deadlines drawn
// uniformly from [P/2, P].
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "flow/flow.h"
#include "flow/priority.h"
#include "flow/router.h"
#include "graph/graph.h"

namespace wsan::flow {

struct flow_set_params {
  int num_flows = 10;
  traffic_type type = traffic_type::peer_to_peer;
  /// Periods are 2^j seconds with j uniform in [min_exp, max_exp];
  /// j may be negative (the paper uses 2^-1 s = 50 slots).
  int period_min_exp = 0;
  int period_max_exp = 2;
  int num_access_points = 2;
  priority_policy priority = priority_policy::deadline_monotonic;
  /// Route metric. hop_count reproduces the paper; etx requires passing
  /// weights to generate_flow_set.
  route_metric metric = route_metric::hop_count;
};

struct flow_set {
  std::vector<flow> flows;               ///< in priority order
  std::vector<node_id> access_points;
};

/// Picks the `count` highest-degree nodes of the communication graph as
/// access points (ties toward lower ids).
std::vector<node_id> pick_access_points(const graph::graph& comm, int count);

/// Generates a flow set on the given communication graph. Throws
/// std::runtime_error if routable source/destination pairs cannot be
/// found (e.g. a badly disconnected graph). `weights` must be non-null
/// when params.metric == route_metric::etx.
flow_set generate_flow_set(const graph::graph& comm,
                           const flow_set_params& params, rng& gen,
                           const etx_weights* weights = nullptr);

/// Period in slots for 2^exp seconds; requires the result to be a whole
/// positive number of slots (exp >= -6 with 10 ms slots).
slot_t period_slots_for_exp(int exp);

}  // namespace wsan::flow
