// Plain-text save/load of flow sets.
//
// Workloads are part of a deployment's configuration: persisting them
// lets operators re-admit the same flows after a manager restart and
// lets experiments pin exact workloads. Format (line-oriented, '#'
// comments allowed):
//   flowset <num_flows>
//   accesspoint <node>
//   flow <id> <source> <destination> <period> <deadline> <type>
//        <uplink_links> <nlinks> <s0> <r0> <s1> <r1> ...
// where <type> is "centralized" or "peer-to-peer".
#pragma once

#include <iosfwd>
#include <string>

#include "flow/flow_generator.h"

namespace wsan::flow {

void save_flow_set(const flow_set& set, std::ostream& os);
flow_set load_flow_set(std::istream& is);

void save_flow_set_file(const flow_set& set, const std::string& path);
flow_set load_flow_set_file(const std::string& path);

}  // namespace wsan::flow
