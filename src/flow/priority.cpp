#include "flow/priority.h"

#include <algorithm>

#include "common/error.h"

namespace wsan::flow {

void assign_priorities(std::vector<flow>& flows, priority_policy policy) {
  const auto key = [policy](const flow& f) {
    return policy == priority_policy::deadline_monotonic ? f.deadline
                                                         : f.period;
  };
  std::stable_sort(flows.begin(), flows.end(),
                   [&](const flow& a, const flow& b) {
                     if (key(a) != key(b)) return key(a) < key(b);
                     return a.id < b.id;
                   });
  for (std::size_t i = 0; i < flows.size(); ++i)
    flows[i].id = static_cast<flow_id>(i);
}

}  // namespace wsan::flow
