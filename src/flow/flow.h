// End-to-end flow model (Section IV-A).
//
// A flow F_i = <S_i, Y_i, D_i, P_i, phi_i>: the source releases a packet
// every P_i slots which must reach the destination within D_i slots over
// the route phi_i. Periods are harmonic powers of two (in seconds) as is
// common in process industries; with 10 ms TSCH slots, 2^j seconds is
// 100 * 2^j slots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"

namespace wsan::flow {

/// TSCH slots per second (10 ms slots).
inline constexpr int k_slots_per_second = 100;

/// Traffic patterns of Section VII: centralized routes through an access
/// point and the wired gateway; peer-to-peer goes directly between field
/// devices.
enum class traffic_type { centralized, peer_to_peer };

std::string to_string(traffic_type type);

/// One wireless hop of a route.
struct link {
  node_id sender = k_invalid_node;
  node_id receiver = k_invalid_node;

  friend bool operator==(const link&, const link&) = default;
};

struct flow {
  flow_id id = k_invalid_flow;          ///< dense; doubles as priority rank
  node_id source = k_invalid_node;      ///< S_i
  node_id destination = k_invalid_node; ///< Y_i
  slot_t period = 0;                    ///< P_i in slots
  slot_t deadline = 0;                  ///< D_i in slots, D_i <= P_i
  std::vector<link> route;              ///< phi_i, in transmission order
  traffic_type type = traffic_type::peer_to_peer;
  /// For centralized flows: number of links in the uplink segment
  /// (source -> access point); the remainder is the downlink segment
  /// (access point -> destination) that runs after the wired gateway hop.
  /// Equal to route.size() for peer-to-peer flows.
  int uplink_links = 0;

  /// Number of packet releases within the given hyperperiod.
  int instances_in(slot_t hyperperiod) const;

  /// Release slot of instance r (0-based).
  slot_t release_slot(int instance) const { return instance * period; }

  /// Absolute deadline slot of instance r: last slot usable by it.
  slot_t deadline_slot(int instance) const {
    return instance * period + deadline - 1;
  }
};

/// Least common multiple of all flow periods; the schedule length.
slot_t hyperperiod(const std::vector<flow>& flows);

/// Validates structural flow invariants (route continuity, deadline
/// bounds, positive period); throws std::invalid_argument on violation.
void validate_flow(const flow& f);

/// Shifts every node id in the flows by `offset` — used when a workload
/// generated on a standalone deployment is re-expressed in a merged
/// topology's id space (topo::merge_topologies).
void shift_node_ids(std::vector<flow>& flows, node_id offset);

}  // namespace wsan::flow
