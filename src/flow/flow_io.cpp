#include "flow/flow_io.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace wsan::flow {

void save_flow_set(const flow_set& set, std::ostream& os) {
  os << "flowset " << set.flows.size() << "\n";
  for (node_id ap : set.access_points) os << "accesspoint " << ap << "\n";
  for (const auto& f : set.flows) {
    os << "flow " << f.id << ' ' << f.source << ' ' << f.destination
       << ' ' << f.period << ' ' << f.deadline << ' '
       << (f.type == traffic_type::centralized ? "centralized"
                                               : "peer-to-peer")
       << ' ' << f.uplink_links << ' ' << f.route.size();
    for (const auto& l : f.route) os << ' ' << l.sender << ' ' << l.receiver;
    os << "\n";
  }
}

flow_set load_flow_set(std::istream& is) {
  flow_set set;
  bool have_header = false;
  std::size_t declared = 0;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    const std::string where = " at line " + std::to_string(line_no);
    if (kind == "flowset") {
      WSAN_REQUIRE(!have_header, "duplicate flowset header" + where);
      ls >> declared;
      WSAN_REQUIRE(static_cast<bool>(ls), "malformed header" + where);
      have_header = true;
    } else if (kind == "accesspoint") {
      node_id ap = k_invalid_node;
      ls >> ap;
      WSAN_REQUIRE(static_cast<bool>(ls),
                   "malformed accesspoint record" + where);
      set.access_points.push_back(ap);
    } else if (kind == "flow") {
      WSAN_REQUIRE(have_header, "flow record before header" + where);
      flow f;
      std::string type;
      std::size_t nlinks = 0;
      ls >> f.id >> f.source >> f.destination >> f.period >> f.deadline >>
          type >> f.uplink_links >> nlinks;
      WSAN_REQUIRE(static_cast<bool>(ls), "malformed flow record" + where);
      WSAN_REQUIRE(type == "centralized" || type == "peer-to-peer",
                   "unknown traffic type '" + type + "'" + where);
      f.type = type == "centralized" ? traffic_type::centralized
                                     : traffic_type::peer_to_peer;
      for (std::size_t i = 0; i < nlinks; ++i) {
        link l;
        ls >> l.sender >> l.receiver;
        WSAN_REQUIRE(static_cast<bool>(ls),
                     "truncated route in flow record" + where);
        f.route.push_back(l);
      }
      validate_flow(f);
      set.flows.push_back(std::move(f));
    } else {
      WSAN_REQUIRE(false, "unknown record kind '" + kind + "'" + where);
    }
  }
  WSAN_REQUIRE(have_header, "stream contained no flowset header");
  WSAN_REQUIRE(set.flows.size() == declared,
               "flow count does not match the header");
  return set;
}

void save_flow_set_file(const flow_set& set, const std::string& path) {
  std::ofstream os(path);
  WSAN_REQUIRE(os.good(), "cannot open file for writing: " + path);
  save_flow_set(set, os);
}

flow_set load_flow_set_file(const std::string& path) {
  std::ifstream is(path);
  WSAN_REQUIRE(is.good(), "cannot open file for reading: " + path);
  return load_flow_set(is);
}

}  // namespace wsan::flow
