// Fixed-priority assignment policies (Section IV-A, Section VII).
#pragma once

#include <vector>

#include "flow/flow.h"

namespace wsan::flow {

enum class priority_policy {
  deadline_monotonic,  ///< shortest deadline first (the paper's choice)
  rate_monotonic,      ///< shortest period first
};

/// Sorts flows into priority order under the given policy and renumbers
/// their ids densely from 0 (id order == priority order: F_i has higher
/// priority than F_k iff i < k). Ties break on the original id so the
/// assignment is deterministic.
void assign_priorities(std::vector<flow>& flows,
                       priority_policy policy =
                           priority_policy::deadline_monotonic);

}  // namespace wsan::flow
