// Route construction on the communication graph (Section VII).
//
// The network manager generates a single shortest-path route per flow.
// Centralized traffic goes source -> access point (uplink), through the
// wired gateway to the controller, then access point -> destination
// (downlink); the access points for the two segments are chosen
// independently to minimize each segment's length. Peer-to-peer traffic
// routes directly between field devices.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "flow/flow.h"
#include "graph/graph.h"
#include "topo/topology.h"

namespace wsan::flow {

/// Result of routing one flow: the wireless links in transmission order
/// and the length of the uplink segment (route.size() for peer-to-peer).
struct route_result {
  std::vector<link> links;
  int uplink_links = 0;
};

/// Shortest-path route source -> destination. nullopt when unreachable
/// or source == destination.
std::optional<route_result> route_peer_to_peer(const graph::graph& comm,
                                               node_id source,
                                               node_id destination);

/// Centralized route source -> best AP, (wired), best AP -> destination.
/// nullopt when either segment is unroutable.
std::optional<route_result> route_centralized(
    const graph::graph& comm, node_id source, node_id destination,
    const std::vector<node_id>& access_points);

/// Converts a node path (from graph::shortest_path) to links.
std::vector<link> path_to_links(const std::vector<node_id>& path);

/// Re-routes one existing flow around excluded (failed) nodes. `comm`
/// must be the communication graph with the excluded nodes' edges
/// removed (graph::remove_nodes), so every returned path avoids them.
/// Peer-to-peer flows re-route source -> destination; centralized flows
/// keep their infrastructure: the access points are read off the flow's
/// current route, and segments are re-routed through the surviving
/// ones. Returns nullopt when the flow can no longer be carried — its
/// source, destination, or every access point is excluded, or no path
/// survives.
std::optional<route_result> reroute_flow(const graph::graph& comm,
                                         const flow& f,
                                         const std::set<node_id>& excluded);

/// Route metric. The paper's network manager uses shortest (fewest-hop)
/// paths; ETX routing — expected transmission count, the classic
/// quality-aware metric — is provided as an alternative: it prefers a
/// longer path over strong links to a shorter path over grey ones.
enum class route_metric { hop_count, etx };

/// Per-link ETX weights for the communication graph: for edge {u, v},
/// weight = 1/2 * (1/avg_prr(u->v) + 1/avg_prr(v->u)) averaged over the
/// channels in use (both directions matter: data + ACK). Weights are
/// computed once and reused across route queries.
class etx_weights {
 public:
  etx_weights(const graph::graph& comm, const topo::topology& topology,
              const std::vector<channel_t>& channels);

  double weight(node_id u, node_id v) const;

 private:
  int num_nodes_ = 0;
  std::vector<double> weights_;  // dense n*n; 0 where no edge
};

/// ETX-weighted route source -> destination on the communication graph.
std::optional<route_result> route_peer_to_peer_etx(
    const graph::graph& comm, const etx_weights& weights, node_id source,
    node_id destination);

/// ETX-weighted centralized route: source -> lowest-ETX access point,
/// (wired), lowest-ETX access point -> destination.
std::optional<route_result> route_centralized_etx(
    const graph::graph& comm, const etx_weights& weights, node_id source,
    node_id destination, const std::vector<node_id>& access_points);

}  // namespace wsan::flow
