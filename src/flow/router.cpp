#include "flow/router.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "graph/algorithms.h"

namespace wsan::flow {

std::vector<link> path_to_links(const std::vector<node_id>& path) {
  std::vector<link> links;
  if (path.size() < 2) return links;
  links.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    links.push_back(link{path[i], path[i + 1]});
  return links;
}

std::optional<route_result> route_peer_to_peer(const graph::graph& comm,
                                               node_id source,
                                               node_id destination) {
  if (source == destination) return std::nullopt;
  const auto path = graph::shortest_path(comm, source, destination);
  if (!path) return std::nullopt;
  route_result result;
  result.links = path_to_links(*path);
  result.uplink_links = static_cast<int>(result.links.size());
  return result;
}

namespace {

/// Shortest path from `from` to the closest of `targets` (or from the
/// closest of `targets` when `reverse` — the graph is undirected, so the
/// path is simply reversed).
std::optional<std::vector<node_id>> path_to_closest(
    const graph::graph& comm, node_id from,
    const std::vector<node_id>& targets) {
  std::optional<std::vector<node_id>> best;
  std::size_t best_len = std::numeric_limits<std::size_t>::max();
  for (node_id target : targets) {
    if (target == from) continue;
    auto path = graph::shortest_path(comm, from, target);
    if (path && path->size() < best_len) {
      best_len = path->size();
      best = std::move(path);
    }
  }
  return best;
}

}  // namespace

etx_weights::etx_weights(const graph::graph& comm,
                         const topo::topology& topology,
                         const std::vector<channel_t>& channels)
    : num_nodes_(comm.num_nodes()) {
  WSAN_REQUIRE(topology.num_nodes() == comm.num_nodes(),
               "graph and topology disagree on the node count");
  WSAN_REQUIRE(!channels.empty(), "channel set must be non-empty");
  weights_.assign(static_cast<std::size_t>(num_nodes_) *
                      static_cast<std::size_t>(num_nodes_),
                  0.0);
  const auto avg_prr = [&](node_id a, node_id b) {
    double sum = 0.0;
    for (channel_t ch : channels) sum += topology.prr(a, b, ch);
    return sum / static_cast<double>(channels.size());
  };
  for (node_id u = 0; u < num_nodes_; ++u) {
    for (node_id v : comm.neighbors(u)) {
      if (v < u) continue;  // handle each undirected edge once
      const double fwd = std::max(avg_prr(u, v), 1e-6);
      const double rev = std::max(avg_prr(v, u), 1e-6);
      const double w = 0.5 * (1.0 / fwd + 1.0 / rev);
      weights_[static_cast<std::size_t>(u) *
                   static_cast<std::size_t>(num_nodes_) +
               static_cast<std::size_t>(v)] = w;
      weights_[static_cast<std::size_t>(v) *
                   static_cast<std::size_t>(num_nodes_) +
               static_cast<std::size_t>(u)] = w;
    }
  }
}

double etx_weights::weight(node_id u, node_id v) const {
  WSAN_REQUIRE(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_,
               "node id out of range");
  const double w = weights_[static_cast<std::size_t>(u) *
                                static_cast<std::size_t>(num_nodes_) +
                            static_cast<std::size_t>(v)];
  WSAN_REQUIRE(w > 0.0, "requested weight of a non-edge");
  return w;
}

std::optional<route_result> route_peer_to_peer_etx(
    const graph::graph& comm, const etx_weights& weights, node_id source,
    node_id destination) {
  if (source == destination) return std::nullopt;
  const auto path = graph::shortest_path_weighted(
      comm, source, destination,
      [&](node_id u, node_id v) { return weights.weight(u, v); });
  if (!path) return std::nullopt;
  route_result result;
  result.links = path_to_links(*path);
  result.uplink_links = static_cast<int>(result.links.size());
  return result;
}

std::optional<route_result> reroute_flow(const graph::graph& comm,
                                         const flow& f,
                                         const std::set<node_id>& excluded) {
  WSAN_REQUIRE(!f.route.empty(), "flow has no route to re-route");
  if (excluded.count(f.source) > 0 || excluded.count(f.destination) > 0)
    return std::nullopt;
  if (f.type == traffic_type::peer_to_peer)
    return route_peer_to_peer(comm, f.source, f.destination);

  // Centralized: keep the flow on its access-point infrastructure. The
  // uplink AP terminates the uplink segment; the downlink AP starts the
  // remainder (they coincide when the wired hop returns to the same AP).
  WSAN_REQUIRE(f.uplink_links >= 1 &&
                   f.uplink_links <= static_cast<int>(f.route.size()),
               "centralized flow has a malformed uplink segment");
  const node_id ap_up =
      f.route[static_cast<std::size_t>(f.uplink_links - 1)].receiver;
  const node_id ap_down =
      f.uplink_links < static_cast<int>(f.route.size())
          ? f.route[static_cast<std::size_t>(f.uplink_links)].sender
          : ap_up;
  std::vector<node_id> access_points{ap_up};
  if (ap_down != ap_up) access_points.push_back(ap_down);
  std::erase_if(access_points,
                [&](node_id ap) { return excluded.count(ap) > 0; });
  if (access_points.empty()) return std::nullopt;  // infrastructure died
  return route_centralized(comm, f.source, f.destination, access_points);
}

std::optional<route_result> route_centralized(
    const graph::graph& comm, node_id source, node_id destination,
    const std::vector<node_id>& access_points) {
  WSAN_REQUIRE(!access_points.empty(),
               "centralized routing requires access points");
  if (source == destination) return std::nullopt;

  const auto uplink = path_to_closest(comm, source, access_points);
  if (!uplink) return std::nullopt;

  // Downlink: shortest path from any AP to the destination. Search from
  // the destination (undirected graph) and reverse.
  auto downlink_rev = path_to_closest(comm, destination, access_points);
  if (!downlink_rev) return std::nullopt;
  std::vector<node_id> downlink(downlink_rev->rbegin(),
                                downlink_rev->rend());

  route_result result;
  result.links = path_to_links(*uplink);
  result.uplink_links = static_cast<int>(result.links.size());
  const auto down_links = path_to_links(downlink);
  result.links.insert(result.links.end(), down_links.begin(),
                      down_links.end());
  return result;
}

namespace {

/// Weighted shortest path from `from` to the access point with the
/// lowest total ETX.
std::optional<std::vector<node_id>> etx_path_to_closest(
    const graph::graph& comm, const etx_weights& weights, node_id from,
    const std::vector<node_id>& targets) {
  std::optional<std::vector<node_id>> best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (node_id target : targets) {
    if (target == from) continue;
    auto path = graph::shortest_path_weighted(
        comm, from, target,
        [&](node_id u, node_id v) { return weights.weight(u, v); });
    if (!path) continue;
    double cost = 0.0;
    for (std::size_t i = 0; i + 1 < path->size(); ++i)
      cost += weights.weight((*path)[i], (*path)[i + 1]);
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(path);
    }
  }
  return best;
}

}  // namespace

std::optional<route_result> route_centralized_etx(
    const graph::graph& comm, const etx_weights& weights, node_id source,
    node_id destination, const std::vector<node_id>& access_points) {
  WSAN_REQUIRE(!access_points.empty(),
               "centralized routing requires access points");
  if (source == destination) return std::nullopt;
  const auto uplink =
      etx_path_to_closest(comm, weights, source, access_points);
  if (!uplink) return std::nullopt;
  auto downlink_rev =
      etx_path_to_closest(comm, weights, destination, access_points);
  if (!downlink_rev) return std::nullopt;
  std::vector<node_id> downlink(downlink_rev->rbegin(),
                                downlink_rev->rend());
  route_result result;
  result.links = path_to_links(*uplink);
  result.uplink_links = static_cast<int>(result.links.size());
  const auto down_links = path_to_links(downlink);
  result.links.insert(result.links.end(), down_links.begin(),
                      down_links.end());
  return result;
}

}  // namespace wsan::flow
