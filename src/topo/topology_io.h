// Plain-text save/load of topologies.
//
// Format (line-oriented, '#' comments allowed):
//   topology <name>
//   params <pl_d0> <ref_d> <exp> <floor_att> <shadow> <fade> <sens> <noise>
//          <width> <tx_power>
//   node <id> <x> <y> <floor>
//   rssi <u> <v> <ch11> <ch12> ... <ch26>
// Lets users persist a measured or synthesized topology and feed it back
// into the scheduler pipeline.
#pragma once

#include <iosfwd>
#include <string>

#include "topo/topology.h"

namespace wsan::topo {

void save_topology(const topology& topo, std::ostream& os);
topology load_topology(std::istream& is);

void save_topology_file(const topology& topo, const std::string& path);
topology load_topology_file(const std::string& path);

}  // namespace wsan::topo
