#include "topo/topology_io.h"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/error.h"

namespace wsan::topo {

void save_topology(const topology& topo, std::ostream& os) {
  os << std::setprecision(10);
  os << "topology " << (topo.name().empty() ? "unnamed" : topo.name())
     << "\n";
  const auto& pl = topo.path_loss();
  const auto& lm = topo.link_model();
  os << "params " << pl.pl_d0_db << ' ' << pl.reference_distance_m << ' '
     << pl.exponent << ' ' << pl.floor_attenuation_db << ' '
     << pl.shadow_sigma_db << ' ' << pl.channel_fading_sigma_db << ' '
     << lm.sensitivity_dbm << ' ' << lm.noise_floor_dbm << ' '
     << lm.transition_width_db << ' ' << topo.tx_power_dbm() << "\n";
  for (node_id id = 0; id < topo.num_nodes(); ++id) {
    const auto& pos = topo.position_of(id);
    os << "node " << id << ' ' << pos.x << ' ' << pos.y << ' ' << pos.floor
       << "\n";
  }
  for (node_id u = 0; u < topo.num_nodes(); ++u) {
    for (node_id v = 0; v < topo.num_nodes(); ++v) {
      if (u == v) continue;
      // Skip all-dead links to keep files small.
      bool any = false;
      for (channel_t ch = phy::k_first_channel; ch <= phy::k_last_channel;
           ++ch) {
        if (topo.rssi_dbm(u, v, ch) > k_no_signal_dbm) {
          any = true;
          break;
        }
      }
      if (!any) continue;
      os << "rssi " << u << ' ' << v;
      for (channel_t ch = phy::k_first_channel; ch <= phy::k_last_channel;
           ++ch)
        os << ' ' << topo.rssi_dbm(u, v, ch);
      os << "\n";
    }
  }
}

topology load_topology(std::istream& is) {
  topology topo;
  struct pending_rssi {
    node_id u, v;
    double values[phy::k_max_channels];
  };
  std::vector<pending_rssi> pending;
  std::map<node_id, phy::position> nodes;

  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    const std::string where = " at line " + std::to_string(line_no);
    if (kind == "topology") {
      std::string name;
      ls >> name;
      topo.set_name(name);
    } else if (kind == "params") {
      phy::path_loss_params pl;
      phy::link_model_params lm;
      double tx_power = 0.0;
      ls >> pl.pl_d0_db >> pl.reference_distance_m >> pl.exponent >>
          pl.floor_attenuation_db >> pl.shadow_sigma_db >>
          pl.channel_fading_sigma_db >> lm.sensitivity_dbm >>
          lm.noise_floor_dbm >> lm.transition_width_db >> tx_power;
      WSAN_REQUIRE(static_cast<bool>(ls), "malformed params line" + where);
      topo.set_path_loss(pl);
      topo.set_link_model(lm);
      topo.set_tx_power_dbm(tx_power);
    } else if (kind == "node") {
      node_id id = k_invalid_node;
      phy::position pos;
      ls >> id >> pos.x >> pos.y >> pos.floor;
      WSAN_REQUIRE(static_cast<bool>(ls), "malformed node line" + where);
      WSAN_REQUIRE(nodes.count(id) == 0, "duplicate node id" + where);
      nodes[id] = pos;
    } else if (kind == "rssi") {
      pending_rssi entry{};
      ls >> entry.u >> entry.v;
      for (double& value : entry.values) ls >> value;
      WSAN_REQUIRE(static_cast<bool>(ls), "malformed rssi line" + where);
      pending.push_back(entry);
    } else {
      WSAN_REQUIRE(false, "unknown record kind '" + kind + "'" + where);
    }
  }

  // Node ids must be dense and 0-based (they are written that way).
  node_id expected = 0;
  for (const auto& [id, pos] : nodes) {
    WSAN_REQUIRE(id == expected, "node ids must be dense starting at 0");
    topo.add_node(pos);
    ++expected;
  }
  for (const auto& entry : pending) {
    for (int c = 0; c < phy::k_max_channels; ++c)
      topo.set_rssi_dbm(entry.u, entry.v, phy::k_first_channel + c,
                        entry.values[c]);
  }
  return topo;
}

void save_topology_file(const topology& topo, const std::string& path) {
  std::ofstream os(path);
  WSAN_REQUIRE(os.good(), "cannot open file for writing: " + path);
  save_topology(topo, os);
}

topology load_topology_file(const std::string& path) {
  std::ifstream is(path);
  WSAN_REQUIRE(is.good(), "cannot open file for reading: " + path);
  return load_topology(is);
}

}  // namespace wsan::topo
