#include "topo/testbeds.h"

#include <cmath>
#include <limits>
#include <queue>

#include "common/error.h"
#include "common/rng.h"
#include "phy/dbm.h"

namespace wsan::topo {

namespace {

/// Places `count` nodes on one floor in a jittered grid covering the
/// floor area. A grid with jitter mimics the corridor/office deployments
/// of Indriya and WUSTL: roughly uniform coverage, no large holes.
void place_floor(topology& topo, const testbed_params& params, int floor,
                 int count, rng& gen) {
  if (count <= 0) return;
  const double aspect = params.floor_width_m / params.floor_depth_m;
  int cols = static_cast<int>(std::ceil(std::sqrt(count * aspect)));
  cols = std::max(cols, 1);
  const int rows = (count + cols - 1) / cols;
  const double dx = params.floor_width_m / (cols + 1);
  const double dy = params.floor_depth_m / (rows + 1);
  int placed = 0;
  for (int r = 0; r < rows && placed < count; ++r) {
    for (int c = 0; c < cols && placed < count; ++c) {
      phy::position pos;
      pos.x = dx * (c + 1) +
              gen.uniform_real(-params.placement_jitter_m,
                               params.placement_jitter_m);
      pos.y = dy * (r + 1) +
              gen.uniform_real(-params.placement_jitter_m,
                               params.placement_jitter_m);
      pos.floor = floor;
      topo.add_node(pos);
      ++placed;
    }
  }
}

/// Component labels of the PRR>=0.9-on-all-channels graph, computed
/// locally to keep topo independent of the graph module.
std::vector<int> comm_components(const topology& topo,
                                 const std::vector<channel_t>& channels) {
  const int n = topo.num_nodes();
  const auto linked = [&](node_id u, node_id v) {
    return topo.min_prr(u, v, channels) >= 0.9 &&
           topo.min_prr(v, u, channels) >= 0.9;
  };
  std::vector<int> label(static_cast<std::size_t>(n), -1);
  int next = 0;
  for (node_id start = 0; start < n; ++start) {
    if (label[static_cast<std::size_t>(start)] != -1) continue;
    std::queue<node_id> queue;
    label[static_cast<std::size_t>(start)] = next;
    queue.push(start);
    while (!queue.empty()) {
      const node_id u = queue.front();
      queue.pop();
      for (node_id v = 0; v < n; ++v) {
        if (v == u || label[static_cast<std::size_t>(v)] != -1) continue;
        if (!linked(u, v)) continue;
        label[static_cast<std::size_t>(v)] = next;
        queue.push(v);
      }
    }
    ++next;
  }
  return label;
}

}  // namespace

topology make_testbed(const testbed_params& params, std::uint64_t seed) {
  WSAN_REQUIRE(params.num_nodes >= 2, "a testbed needs at least two nodes");
  WSAN_REQUIRE(params.num_floors >= 1, "a testbed needs at least one floor");

  topology topo(params.name);
  topo.set_path_loss(params.path_loss);
  topo.set_link_model(params.link_model);
  topo.set_tx_power_dbm(params.tx_power_dbm);

  rng gen(seed);

  // Distribute nodes across floors as evenly as possible.
  const int base = params.num_nodes / params.num_floors;
  int remainder = params.num_nodes % params.num_floors;
  for (int f = 0; f < params.num_floors; ++f) {
    const int count = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    place_floor(topo, params, f, count, gen);
  }
  WSAN_CHECK(topo.num_nodes() == params.num_nodes,
             "floor placement lost nodes");

  // Radio state per unordered pair: a shared shadowing term (large-scale
  // fading is reciprocal), a per-channel frequency-selective term, and a
  // small directional asymmetry.
  for (node_id u = 0; u < topo.num_nodes(); ++u) {
    for (node_id v = u + 1; v < topo.num_nodes(); ++v) {
      const double mean_loss = phy::mean_path_loss_db(
          params.path_loss, topo.position_of(u), topo.position_of(v));
      const double shadow =
          gen.normal(0.0, params.path_loss.shadow_sigma_db);
      for (channel_t ch = phy::k_first_channel; ch <= phy::k_last_channel;
           ++ch) {
        const double fade =
            gen.normal(0.0, params.path_loss.channel_fading_sigma_db);
        const double asym_uv = gen.normal(0.0, params.asymmetry_sigma_db);
        const double asym_vu = gen.normal(0.0, params.asymmetry_sigma_db);
        const double base_rssi =
            params.tx_power_dbm - mean_loss - shadow - fade;
        topo.set_rssi_dbm(u, v, ch, base_rssi - asym_uv);
        topo.set_rssi_dbm(v, u, ch, base_rssi - asym_vu);
      }
    }
  }
  // Connectivity repair: a real deployment is installed until the
  // network is usable — operators reposition nodes or add relays when a
  // wing ends up cut off. We model that by strengthening the shortest
  // bridging link between components until the communication graph
  // (PRR >= 0.9 on the first eight channels, which implies connectivity
  // for any smaller channel count) is connected. Unaffected deployments
  // pass through untouched.
  const auto repair_channels = phy::channels(8);
  for (int guard = 0; guard < params.num_nodes; ++guard) {
    const auto component = comm_components(topo, repair_channels);
    bool connected = true;
    for (int label : component) connected = connected && label == 0;
    if (connected) break;

    // The closest cross-component pair gets a deterministic strong link
    // (a relocated node with clear line of sight).
    node_id best_u = k_invalid_node;
    node_id best_v = k_invalid_node;
    double best_distance = std::numeric_limits<double>::max();
    for (node_id u = 0; u < topo.num_nodes(); ++u) {
      for (node_id v = u + 1; v < topo.num_nodes(); ++v) {
        if (component[static_cast<std::size_t>(u)] ==
            component[static_cast<std::size_t>(v)])
          continue;
        const double d = phy::distance_m(topo.position_of(u),
                                         topo.position_of(v));
        if (d < best_distance) {
          best_distance = d;
          best_u = u;
          best_v = v;
        }
      }
    }
    WSAN_CHECK(best_u != k_invalid_node, "no cross-component pair found");
    const double line_of_sight = params.tx_power_dbm -
                                 phy::mean_path_loss_db(
                                     params.path_loss, best_distance, 0);
    const double strong = std::max(line_of_sight, -80.0);
    for (channel_t ch = phy::k_first_channel; ch <= phy::k_last_channel;
         ++ch) {
      topo.set_rssi_dbm(best_u, best_v, ch, strong);
      topo.set_rssi_dbm(best_v, best_u, ch, strong);
    }
  }

  return topo;
}

topology make_indriya(std::uint64_t seed) {
  testbed_params params;
  params.name = "indriya";
  params.num_nodes = 80;
  params.num_floors = 3;
  params.floor_width_m = 95.0;
  params.floor_depth_m = 40.0;
  params.placement_jitter_m = 2.5;
  return make_testbed(params, seed);
}

topology make_wustl(std::uint64_t seed) {
  testbed_params params;
  params.name = "wustl";
  params.num_nodes = 60;
  params.num_floors = 3;
  params.floor_width_m = 75.0;
  params.floor_depth_m = 35.0;
  params.placement_jitter_m = 2.0;
  return make_testbed(params, seed);
}

}  // namespace wsan::topo
