#include "topo/merge.h"

#include "common/error.h"
#include "common/rng.h"
#include "phy/path_loss.h"

namespace wsan::topo {

merge_result merge_topologies(const topology& a, const topology& b,
                              double x_offset_m, std::uint64_t seed) {
  WSAN_REQUIRE(a.num_nodes() > 0 && b.num_nodes() > 0,
               "both deployments must be non-empty");
  WSAN_REQUIRE(x_offset_m >= 0.0, "offset must be non-negative");

  merge_result result;
  result.merged.set_name(a.name() + "+" + b.name());
  result.merged.set_path_loss(a.path_loss());
  result.merged.set_link_model(a.link_model());
  result.merged.set_tx_power_dbm(a.tx_power_dbm());
  result.node_offset = a.num_nodes();

  for (node_id u = 0; u < a.num_nodes(); ++u)
    result.merged.add_node(a.position_of(u));
  for (node_id v = 0; v < b.num_nodes(); ++v) {
    auto pos = b.position_of(v);
    pos.x += x_offset_m;
    result.merged.add_node(pos);
  }

  // Intra-deployment state is preserved exactly.
  for (node_id u = 0; u < a.num_nodes(); ++u)
    for (node_id v = 0; v < a.num_nodes(); ++v) {
      if (u == v) continue;
      for (channel_t ch = phy::k_first_channel; ch <= phy::k_last_channel;
           ++ch)
        result.merged.set_rssi_dbm(u, v, ch, a.rssi_dbm(u, v, ch));
    }
  for (node_id u = 0; u < b.num_nodes(); ++u)
    for (node_id v = 0; v < b.num_nodes(); ++v) {
      if (u == v) continue;
      for (channel_t ch = phy::k_first_channel; ch <= phy::k_last_channel;
           ++ch)
        result.merged.set_rssi_dbm(result.node_offset + u,
                                   result.node_offset + v, ch,
                                   b.rssi_dbm(u, v, ch));
    }

  // Cross-deployment links: same statistical model as make_testbed.
  rng gen(seed);
  const auto& pl = a.path_loss();
  for (node_id u = 0; u < a.num_nodes(); ++u) {
    for (node_id v = 0; v < b.num_nodes(); ++v) {
      const node_id w = result.node_offset + v;
      const double mean_loss = phy::mean_path_loss_db(
          pl, result.merged.position_of(u), result.merged.position_of(w));
      const double shadow = gen.normal(0.0, pl.shadow_sigma_db);
      for (channel_t ch = phy::k_first_channel; ch <= phy::k_last_channel;
           ++ch) {
        const double fade =
            gen.normal(0.0, pl.channel_fading_sigma_db);
        const double rssi = a.tx_power_dbm() - mean_loss - shadow - fade;
        result.merged.set_rssi_dbm(u, w, ch, rssi);
        result.merged.set_rssi_dbm(w, u, ch, rssi);
      }
    }
  }
  return result;
}

}  // namespace wsan::topo
