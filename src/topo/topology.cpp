#include "topo/topology.h"

#include <algorithm>

#include "common/error.h"

namespace wsan::topo {

node_id topology::add_node(const phy::position& pos) {
  const node_id id = static_cast<node_id>(positions_.size());
  positions_.push_back(pos);
  // Grow the dense RSSI matrix: rebuild with the new size, preserving
  // existing entries. Nodes are almost always added up-front, so the
  // quadratic rebuild cost is irrelevant in practice.
  const int n = num_nodes();
  std::vector<double> grown(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
          phy::k_max_channels,
      k_no_signal_dbm);
  const int old_n = n - 1;
  for (node_id u = 0; u < old_n; ++u) {
    for (node_id v = 0; v < old_n; ++v) {
      for (int c = 0; c < phy::k_max_channels; ++c) {
        const auto old_idx =
            (static_cast<std::size_t>(u) * static_cast<std::size_t>(old_n) +
             static_cast<std::size_t>(v)) *
                phy::k_max_channels +
            static_cast<std::size_t>(c);
        const auto new_idx =
            (static_cast<std::size_t>(u) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(v)) *
                phy::k_max_channels +
            static_cast<std::size_t>(c);
        grown[new_idx] = rssi_[old_idx];
      }
    }
  }
  rssi_ = std::move(grown);
  return id;
}

const phy::position& topology::position_of(node_id id) const {
  WSAN_REQUIRE(id >= 0 && id < num_nodes(), "node id out of range");
  return positions_[static_cast<std::size_t>(id)];
}

std::vector<node_id> topology::node_ids() const {
  std::vector<node_id> ids(static_cast<std::size_t>(num_nodes()));
  for (int i = 0; i < num_nodes(); ++i) ids[static_cast<std::size_t>(i)] = i;
  return ids;
}

std::size_t topology::link_index(node_id u, node_id v, channel_t ch) const {
  WSAN_REQUIRE(u >= 0 && u < num_nodes(), "sender id out of range");
  WSAN_REQUIRE(v >= 0 && v < num_nodes(), "receiver id out of range");
  const int c = phy::channel_index(ch);
  return (static_cast<std::size_t>(u) *
              static_cast<std::size_t>(num_nodes()) +
          static_cast<std::size_t>(v)) *
             phy::k_max_channels +
         static_cast<std::size_t>(c);
}

double topology::rssi_dbm(node_id u, node_id v, channel_t ch) const {
  if (u == v) return k_no_signal_dbm;
  return rssi_[link_index(u, v, ch)];
}

void topology::set_rssi_dbm(node_id u, node_id v, channel_t ch, double rssi) {
  WSAN_REQUIRE(u != v, "self links are not allowed");
  rssi_[link_index(u, v, ch)] = rssi;
}

double topology::prr(node_id u, node_id v, channel_t ch) const {
  return phy::prr_from_rssi(link_model_, rssi_dbm(u, v, ch));
}

void topology::set_prr(node_id u, node_id v, channel_t ch, double prr) {
  WSAN_REQUIRE(prr >= 0.0 && prr <= 1.0, "PRR must be in [0, 1]");
  set_rssi_dbm(u, v, ch, phy::rssi_from_prr(link_model_, prr));
}

double topology::min_prr(node_id u, node_id v,
                         const std::vector<channel_t>& channels) const {
  WSAN_REQUIRE(!channels.empty(), "channel set must be non-empty");
  double best = 1.0;
  for (channel_t ch : channels) best = std::min(best, prr(u, v, ch));
  return best;
}

double topology::max_prr(node_id u, node_id v,
                         const std::vector<channel_t>& channels) const {
  WSAN_REQUIRE(!channels.empty(), "channel set must be non-empty");
  double best = 0.0;
  for (channel_t ch : channels) best = std::max(best, prr(u, v, ch));
  return best;
}

}  // namespace wsan::topo
