// Network topology: node positions plus per-directed-link, per-channel
// radio state.
//
// The ground truth of a deployment is the received signal strength of
// every directed link on every channel; the PRR the network manager sees
// (and that graph construction consumes, Section IV-B) is derived from it
// through the link model. Storing RSSI rather than PRR lets the network
// simulator compute SINR for concurrent transmissions consistently with
// the standalone link qualities.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "phy/channel.h"
#include "phy/link_model.h"
#include "phy/path_loss.h"
#include "phy/position.h"

namespace wsan::topo {

class topology {
 public:
  topology() = default;
  explicit topology(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a node at the given position; returns its id (dense, 0-based).
  node_id add_node(const phy::position& pos);

  int num_nodes() const { return static_cast<int>(positions_.size()); }
  const phy::position& position_of(node_id id) const;

  /// All node ids [0, num_nodes).
  std::vector<node_id> node_ids() const;

  /// Received signal strength (dBm) on the directed link u->v for the
  /// given channel. Defaults to -infinity-ish (no connectivity).
  double rssi_dbm(node_id u, node_id v, channel_t ch) const;
  void set_rssi_dbm(node_id u, node_id v, channel_t ch, double rssi);

  /// Packet reception ratio of the directed link u->v on a channel, as
  /// derived from the stored RSSI through the link model. This is the
  /// quantity the WirelessHART network manager collects.
  double prr(node_id u, node_id v, channel_t ch) const;

  /// Convenience: sets the RSSI so the link's PRR equals `prr` exactly.
  void set_prr(node_id u, node_id v, channel_t ch, double prr);

  /// Minimum PRR of u->v across the given channel set.
  double min_prr(node_id u, node_id v,
                 const std::vector<channel_t>& channels) const;

  /// Maximum PRR of u->v across the given channel set.
  double max_prr(node_id u, node_id v,
                 const std::vector<channel_t>& channels) const;

  const phy::path_loss_params& path_loss() const { return path_loss_; }
  void set_path_loss(const phy::path_loss_params& p) { path_loss_ = p; }

  const phy::link_model_params& link_model() const { return link_model_; }
  void set_link_model(const phy::link_model_params& p) { link_model_ = p; }

  double tx_power_dbm() const { return tx_power_dbm_; }
  void set_tx_power_dbm(double p) { tx_power_dbm_ = p; }

 private:
  std::size_t link_index(node_id u, node_id v, channel_t ch) const;

  std::string name_;
  std::vector<phy::position> positions_;
  /// Dense n*n*16 matrix of directed-link RSSI values.
  std::vector<double> rssi_;
  phy::path_loss_params path_loss_;
  phy::link_model_params link_model_;
  double tx_power_dbm_ = 0.0;
};

/// Sentinel RSSI for "no signal"; PRR at this level is exactly 0.
inline constexpr double k_no_signal_dbm = -200.0;

}  // namespace wsan::topo
