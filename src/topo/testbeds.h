// Synthetic testbed topology generators.
//
// The paper evaluates on (a) the 80-node Indriya testbed at NUS and
// (b) the 60-node WUSTL testbed spanning three floors. We do not have the
// measured 16-channel PRR matrices, so we synthesize deployments of the
// same scale and structure: multi-floor grids with placement jitter,
// log-distance path loss with floor attenuation, log-normal shadowing per
// link, and frequency-selective fading per (link, channel). See
// DESIGN.md §2 for why this preserves the behaviour the algorithms
// depend on.
#pragma once

#include <cstdint>

#include "topo/topology.h"

namespace wsan::topo {

struct testbed_params {
  std::string name = "testbed";
  int num_nodes = 60;
  int num_floors = 3;
  double floor_width_m = 40.0;
  double floor_depth_m = 25.0;
  double placement_jitter_m = 2.0;
  double tx_power_dbm = 0.0;  ///< paper: 0 dBm on the WUSTL testbed
  /// Asymmetry noise between the two directions of a link (dB).
  double asymmetry_sigma_db = 1.0;
  phy::path_loss_params path_loss;
  phy::link_model_params link_model;
};

/// Builds a testbed from explicit parameters, deterministically from seed.
topology make_testbed(const testbed_params& params, std::uint64_t seed);

/// 80-node, 3-floor deployment modeled on the Indriya testbed's scale.
topology make_indriya(std::uint64_t seed = 1);

/// 60-node, 3-floor deployment modeled on the WUSTL testbed's scale.
topology make_wustl(std::uint64_t seed = 2);

}  // namespace wsan::topo
