// Merging deployments into one RF space.
//
// WirelessHART forbids channel reuse within a network but "channels may
// be reused when multiple networks connected to different gateways
// coexist. In this case, interferences may occur if those networks are
// located close to each other" (paper, Section III). To study that
// case, two independently generated deployments are placed into one
// topology at a horizontal offset; the cross-network link state is
// synthesized from the same path-loss model, so the merged RF world is
// physically consistent.
#pragma once

#include <cstdint>

#include "topo/topology.h"

namespace wsan::topo {

struct merge_result {
  topology merged;
  /// Node id offset of the second deployment: its node v becomes
  /// node_offset + v in the merged topology.
  node_id node_offset = 0;
};

/// Places `b` at `x_offset_m` to the right of `a`'s coordinate origin
/// (same floors). Intra-deployment link state is copied verbatim;
/// cross-deployment links are generated from a's path-loss model with
/// deterministic shadowing/fading drawn from `seed`. The merged
/// topology keeps a's PHY parameters (both testbeds share them).
merge_result merge_topologies(const topology& a, const topology& b,
                              double x_offset_m, std::uint64_t seed);

}  // namespace wsan::topo
