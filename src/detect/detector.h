// Detecting reliability degradation caused by channel reuse (Section VI).
//
// For every link involved in channel reuse the network manager holds two
// PRR sample distributions per epoch: PRR_DIST_r (slots shared with other
// transmissions) and PRR_DIST_cf (contention-free slots). The policy:
//
//   if PRR_r(l) < PRR_t:
//     run a two-sample K-S test on PRR_DIST_r vs PRR_DIST_cf
//       reject  -> channel reuse degrades the link      (reschedule it)
//       accept  -> degradation has another cause (e.g. external
//                  interference; removing reuse would not help)
//   else: the link meets the reliability requirement.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "stats/ks_test.h"

namespace wsan::detect {

/// Which two-sample test compares PRR_DIST_r against PRR_DIST_cf. The
/// paper uses K-S; Mann-Whitney is provided for the detector ablation
/// (DESIGN.md §6).
enum class detection_test {
  kolmogorov_smirnov,
  mann_whitney,
  /// Monte-Carlo exact K-S: accurate p-values at tiny sample counts
  /// (short epochs) at extra CPU cost.
  ks_permutation,
};

std::string to_string(detection_test test);

struct detection_policy {
  double prr_threshold = 0.9;  ///< PRR_t
  double alpha = 0.05;         ///< significance level
  detection_test test = detection_test::kolmogorov_smirnov;
  /// Minimum samples on each side required to run the test; below this
  /// the test has no power and the link is reported as
  /// insufficient_data.
  std::size_t min_samples = 3;
};

enum class link_verdict {
  meets_requirement,   ///< PRR_r >= PRR_t
  degraded_by_reuse,   ///< PRR_r < PRR_t and K-S rejects
  degraded_by_other,   ///< PRR_r < PRR_t and K-S accepts
  insufficient_data,   ///< not enough samples for the K-S test
};

std::string to_string(link_verdict verdict);

struct link_report {
  sim::link_key link;
  link_verdict verdict = link_verdict::insufficient_data;
  double prr_reuse = 1.0;        ///< overall PRR in reuse slots
  double prr_contention_free = 1.0;
  /// Filled for the test the policy selected (unless insufficient_data):
  /// ks.statistic/p_value for K-S, or the Mann-Whitney p-value mirrored
  /// into ks.p_value/reject so downstream consumers are test-agnostic.
  stats::ks_result ks;
  std::size_t reuse_sample_count = 0;
  std::size_t cf_sample_count = 0;
};

/// Classifies one link from its two sample distributions.
link_report classify_link(const sim::link_key& link,
                          const std::vector<double>& reuse_prr_samples,
                          const std::vector<double>& cf_prr_samples,
                          double overall_reuse_prr, double overall_cf_prr,
                          const detection_policy& policy);

/// Classifies every link that has channel-reuse observations. Links that
/// never share a channel are outside the policy's scope (Section VI
/// considers only links associated with channel reuse).
std::vector<link_report> classify_links(
    const std::map<sim::link_key, sim::link_observations>& observations,
    const detection_policy& policy);

/// Epoch view: restricts the observation streams to runs in
/// [epoch * runs_per_epoch, (epoch+1) * runs_per_epoch) and classifies.
/// Models the paper's 15-minute health-report epochs with 18 samples.
std::vector<link_report> classify_links_in_epoch(
    const std::map<sim::link_key, sim::link_observations>& observations,
    int epoch, int runs_per_epoch, const detection_policy& policy);

/// Convenience: links from a report list with the given verdict.
std::vector<sim::link_key> links_with_verdict(
    const std::vector<link_report>& reports, link_verdict verdict);

/// The links the network manager should isolate when rescheduling: all
/// links whose verdict is degraded_by_reuse, as (sender, receiver)
/// pairs ready for core::scheduler_config::isolated_links.
std::set<std::pair<node_id, node_id>> isolation_set(
    const std::vector<link_report>& reports);

}  // namespace wsan::detect
