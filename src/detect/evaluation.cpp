#include "detect/evaluation.h"

#include "common/error.h"

namespace wsan::detect {

std::string to_string(ground_truth_label label) {
  switch (label) {
    case ground_truth_label::healthy:
      return "healthy";
    case ground_truth_label::reuse_degraded:
      return "reuse-degraded";
    case ground_truth_label::externally_degraded:
      return "externally-degraded";
    case ground_truth_label::both_degraded:
      return "both-degraded";
  }
  WSAN_CHECK(false, "unknown ground truth label");
}

ground_truth_label ground_truth_of(const sim::link_observations& obs,
                                   const ground_truth_options& options) {
  WSAN_REQUIRE(options.reuse_loss_threshold >= 0.0 &&
                   options.external_loss_threshold >= 0.0,
               "loss thresholds must be non-negative");
  const bool reuse = obs.reuse_loss_rate() > options.reuse_loss_threshold;
  const bool external =
      obs.external_loss_rate() > options.external_loss_threshold;
  if (reuse && external) return ground_truth_label::both_degraded;
  if (reuse) return ground_truth_label::reuse_degraded;
  if (external) return ground_truth_label::externally_degraded;
  return ground_truth_label::healthy;
}

detector_score score_detection(
    const std::vector<link_report>& reports,
    const std::map<sim::link_key, sim::link_observations>& observations,
    const ground_truth_options& options) {
  detector_score score;
  for (const auto& report : reports) {
    if (report.verdict != link_verdict::degraded_by_reuse &&
        report.verdict != link_verdict::degraded_by_other)
      continue;
    const auto it = observations.find(report.link);
    WSAN_REQUIRE(it != observations.end(),
                 "report references a link with no observations");
    ++score.scored_links;
    const auto truth = ground_truth_of(it->second, options);
    const bool truly_reuse =
        truth == ground_truth_label::reuse_degraded ||
        truth == ground_truth_label::both_degraded;
    const bool said_reuse =
        report.verdict == link_verdict::degraded_by_reuse;
    if (said_reuse && truly_reuse) ++score.true_positives;
    if (said_reuse && !truly_reuse) ++score.false_positives;
    if (!said_reuse && truly_reuse) ++score.false_negatives;
    if (!said_reuse && !truly_reuse) ++score.true_negatives;
  }
  return score;
}

}  // namespace wsan::detect
