#include "detect/detector.h"

#include <limits>
#include <string>

#include "common/error.h"
#include "stats/mann_whitney.h"

namespace wsan::detect {

std::string to_string(link_verdict verdict) {
  switch (verdict) {
    case link_verdict::meets_requirement:
      return "meets-requirement";
    case link_verdict::degraded_by_reuse:
      return "degraded-by-reuse";
    case link_verdict::degraded_by_other:
      return "degraded-by-other";
    case link_verdict::insufficient_data:
      return "insufficient-data";
  }
  WSAN_CHECK(false, "unknown verdict");
}

link_report classify_link(const sim::link_key& link,
                          const std::vector<double>& reuse_prr_samples,
                          const std::vector<double>& cf_prr_samples,
                          double overall_reuse_prr, double overall_cf_prr,
                          const detection_policy& policy) {
  WSAN_REQUIRE(policy.prr_threshold > 0.0 && policy.prr_threshold <= 1.0,
               "PRR threshold must be in (0, 1]");
  link_report report;
  report.link = link;
  report.prr_reuse = overall_reuse_prr;
  report.prr_contention_free = overall_cf_prr;
  report.reuse_sample_count = reuse_prr_samples.size();
  report.cf_sample_count = cf_prr_samples.size();

  if (overall_reuse_prr >= policy.prr_threshold) {
    report.verdict = link_verdict::meets_requirement;
    return report;
  }
  if (reuse_prr_samples.size() < policy.min_samples ||
      cf_prr_samples.size() < policy.min_samples) {
    report.verdict = link_verdict::insufficient_data;
    return report;
  }
  if (policy.test == detection_test::kolmogorov_smirnov) {
    report.ks = stats::ks_test(reuse_prr_samples, cf_prr_samples,
                               policy.alpha);
  } else if (policy.test == detection_test::ks_permutation) {
    report.ks = stats::ks_test_permutation(reuse_prr_samples,
                                           cf_prr_samples, policy.alpha);
  } else {
    const auto mw = stats::mann_whitney_test(reuse_prr_samples,
                                             cf_prr_samples, policy.alpha);
    report.ks.statistic = mw.u_statistic;
    report.ks.p_value = mw.p_value;
    report.ks.reject = mw.reject;
  }
  report.verdict = report.ks.reject ? link_verdict::degraded_by_reuse
                                    : link_verdict::degraded_by_other;
  return report;
}

std::string to_string(detection_test test) {
  switch (test) {
    case detection_test::kolmogorov_smirnov:
      return "K-S";
    case detection_test::mann_whitney:
      return "Mann-Whitney";
    case detection_test::ks_permutation:
      return "K-S (permutation)";
  }
  WSAN_CHECK(false, "unknown detection test");
}

namespace {

std::vector<double> sample_values(
    const std::vector<std::pair<int, double>>& samples, int run_begin,
    int run_end) {
  std::vector<double> values;
  for (const auto& [run, prr] : samples) {
    if (run >= run_begin && run < run_end) values.push_back(prr);
  }
  return values;
}

double overall_prr_of(const std::vector<double>& samples, double fallback) {
  if (samples.empty()) return fallback;
  double sum = 0.0;
  for (double v : samples) sum += v;
  return sum / static_cast<double>(samples.size());
}

std::vector<link_report> classify_range(
    const std::map<sim::link_key, sim::link_observations>& observations,
    int run_begin, int run_end, const detection_policy& policy) {
  std::vector<link_report> reports;
  for (const auto& [link, obs] : observations) {
    if (obs.reuse_attempts == 0) continue;  // not associated with reuse
    const auto reuse = sample_values(obs.reuse_samples, run_begin, run_end);
    const auto cf = sample_values(obs.cf_samples, run_begin, run_end);
    if (reuse.empty()) continue;  // no reuse activity in this window
    reports.push_back(classify_link(
        link, reuse, cf, overall_prr_of(reuse, obs.overall_reuse_prr()),
        overall_prr_of(cf, obs.overall_cf_prr()), policy));
  }
  return reports;
}

}  // namespace

std::vector<link_report> classify_links(
    const std::map<sim::link_key, sim::link_observations>& observations,
    const detection_policy& policy) {
  return classify_range(observations, 0,
                        std::numeric_limits<int>::max(), policy);
}

std::vector<link_report> classify_links_in_epoch(
    const std::map<sim::link_key, sim::link_observations>& observations,
    int epoch, int runs_per_epoch, const detection_policy& policy) {
  WSAN_REQUIRE(epoch >= 0, "epoch must be non-negative");
  WSAN_REQUIRE(runs_per_epoch >= 1, "epoch size must be positive");
  return classify_range(observations, epoch * runs_per_epoch,
                        (epoch + 1) * runs_per_epoch, policy);
}

std::vector<sim::link_key> links_with_verdict(
    const std::vector<link_report>& reports, link_verdict verdict) {
  std::vector<sim::link_key> links;
  for (const auto& report : reports)
    if (report.verdict == verdict) links.push_back(report.link);
  return links;
}

std::set<std::pair<node_id, node_id>> isolation_set(
    const std::vector<link_report>& reports) {
  std::set<std::pair<node_id, node_id>> links;
  for (const auto& report : reports) {
    if (report.verdict == link_verdict::degraded_by_reuse)
      links.insert({report.link.sender, report.link.receiver});
  }
  return links;
}

}  // namespace wsan::detect
