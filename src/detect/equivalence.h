// Oracle-vs-candidate comparison of simulator observation streams.
//
// Bridges the simulator's per-link PRR sample streams into the generic
// K-S equivalence gate (stats/equivalence.h): every link contributes
// one group per observation kind ("s->r/reuse", "s->r/cf"), with the
// per-run PRR sample values pooled across all supplied results (one
// sim_result per seed). This is the harness the batched fade-kernel
// tier is gated on — see DESIGN.md §10 and
// tests/fade_equivalence_test.cpp.
#pragma once

#include <vector>

#include "sim/simulator.h"
#include "stats/equivalence.h"

namespace wsan::detect {

/// Builds the per-link PRR sample groups from matched result vectors
/// (same scenarios, same seeds, different kernels) and runs the gate.
/// Links are grouped by identity, so both sides must come from the
/// same schedule; a link present on one side only still forms a group
/// (it will be skipped or rejected depending on sample counts, which
/// is the behavior we want — a kernel that changes *which* links
/// observe traffic is not equivalent).
stats::ks_gate_result compare_prr_streams(
    const std::vector<sim::sim_result>& reference_runs,
    const std::vector<sim::sim_result>& candidate_runs,
    const stats::ks_gate_config& config = {});

}  // namespace wsan::detect
