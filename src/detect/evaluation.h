// Scoring the detection policy against simulator ground truth.
//
// The simulator attributes every expected packet loss to its cause
// (in-network channel reuse vs external interference) by counterfactual
// reception probabilities — information a real network manager never
// has. This module labels each link from that ground truth and scores
// the K-S-based detection policy's reject/accept decisions, quantifying
// the claim of Section VII-E that the policy "can effectively
// distinguish if link quality degradation is a result of channel reuse
// or external interference".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "detect/detector.h"
#include "sim/simulator.h"

namespace wsan::detect {

struct ground_truth_options {
  /// A link is truly reuse-degraded if channel reuse costs it more than
  /// this fraction of its packets (expected, counterfactual).
  double reuse_loss_threshold = 0.05;
  /// Same for external interference.
  double external_loss_threshold = 0.05;
};

enum class ground_truth_label {
  healthy,
  reuse_degraded,
  externally_degraded,
  both_degraded,
};

std::string to_string(ground_truth_label label);

ground_truth_label ground_truth_of(const sim::link_observations& obs,
                                   const ground_truth_options& options = {});

/// Confusion counts for the binary question the policy answers on links
/// that fail the reliability requirement: "is channel reuse the cause?"
/// Positives are verdicts of degraded_by_reuse; a link counts as truly
/// positive when its ground truth includes reuse degradation.
struct detector_score {
  int true_positives = 0;
  int false_positives = 0;
  int true_negatives = 0;
  int false_negatives = 0;
  int scored_links = 0;  ///< reports with a reject/accept verdict

  double precision() const {
    const int denom = true_positives + false_positives;
    return denom == 0 ? 1.0 : static_cast<double>(true_positives) / denom;
  }
  double recall() const {
    const int denom = true_positives + false_negatives;
    return denom == 0 ? 1.0 : static_cast<double>(true_positives) / denom;
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Scores the reports produced by classify_links() against the ground
/// truth embedded in the observations. Only reports with a reject or
/// accept verdict participate (the policy makes no causal claim about
/// links that meet the requirement or lack data).
detector_score score_detection(
    const std::vector<link_report>& reports,
    const std::map<sim::link_key, sim::link_observations>& observations,
    const ground_truth_options& options = {});

}  // namespace wsan::detect
