#include "detect/equivalence.h"

#include <map>
#include <sstream>
#include <string>
#include <utility>

namespace wsan::detect {

namespace {

std::string link_name(const sim::link_key& link, const char* kind) {
  std::ostringstream out;
  out << link.sender << "->" << link.receiver << "/" << kind;
  return out.str();
}

void collect(const std::vector<sim::sim_result>& results, bool candidate,
             std::map<std::pair<sim::link_key, bool>,
                      stats::ks_gate_group>& groups) {
  for (const auto& result : results) {
    for (const auto& [link, obs] : result.links) {
      for (const bool reuse : {true, false}) {
        const auto& samples = reuse ? obs.reuse_samples : obs.cf_samples;
        if (samples.empty()) continue;
        auto& group = groups[{link, reuse}];
        if (group.name.empty())
          group.name = link_name(link, reuse ? "reuse" : "cf");
        auto& side = candidate ? group.candidate : group.reference;
        for (const auto& [run, prr] : samples) side.push_back(prr);
      }
    }
  }
}

}  // namespace

stats::ks_gate_result compare_prr_streams(
    const std::vector<sim::sim_result>& reference_runs,
    const std::vector<sim::sim_result>& candidate_runs,
    const stats::ks_gate_config& config) {
  // Keyed map (not insertion order) so the group list — and therefore
  // the Bonferroni m and every reported name — is independent of the
  // order results were supplied in.
  std::map<std::pair<sim::link_key, bool>, stats::ks_gate_group> groups;
  collect(reference_runs, /*candidate=*/false, groups);
  collect(candidate_runs, /*candidate=*/true, groups);

  std::vector<stats::ks_gate_group> ordered;
  ordered.reserve(groups.size());
  for (auto& [key, group] : groups) ordered.push_back(std::move(group));
  return stats::ks_equivalence_gate(ordered, config);
}

}  // namespace wsan::detect
