// Decibel-milliwatt arithmetic helpers.
#pragma once

#include <cmath>

namespace wsan::phy {

inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Adds two powers expressed in dBm (i.e., sums them in milliwatts).
inline double dbm_sum(double a_dbm, double b_dbm) {
  return mw_to_dbm(dbm_to_mw(a_dbm) + dbm_to_mw(b_dbm));
}

}  // namespace wsan::phy
