#include "phy/link_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "phy/sigmoid.h"

namespace wsan::phy {

double prr_from_rssi(const link_model_params& params, double rssi_dbm) {
  WSAN_REQUIRE(params.transition_width_db > 0.0,
               "transition width must be positive");
  // Map the transition width to the sigmoid scale: PRR goes from ~0.12 to
  // ~0.88 across one transition width centered on the sensitivity.
  const double scale = params.transition_width_db / 4.0;
  return clamped_sigmoid((rssi_dbm - params.sensitivity_dbm) / scale);
}

double prr_from_snr(const link_model_params& params, double snr_db) {
  // snr_db is relative to the noise floor, so rssi = noise_floor + snr;
  // prr_from_rssi anchors the 50% point at the configured sensitivity.
  return prr_from_rssi(params, params.noise_floor_dbm + snr_db);
}

double rssi_from_prr(const link_model_params& params, double prr) {
  WSAN_REQUIRE(prr >= 0.0 && prr <= 1.0, "PRR must be in [0, 1]");
  const double scale = params.transition_width_db / 4.0;
  // Slightly beyond the sigmoid's clamp region so the round trip through
  // prr_from_rssi yields exactly 0 or 1.
  if (prr >= 1.0) return params.sensitivity_dbm + 9.0 * scale;
  if (prr <= 0.0) return params.sensitivity_dbm - 9.0 * scale;
  const double logit = std::log(prr / (1.0 - prr));
  return params.sensitivity_dbm + scale * logit;
}

}  // namespace wsan::phy
