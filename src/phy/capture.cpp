#include "phy/capture.h"

#include <cmath>

#include "common/error.h"
#include "phy/dbm.h"
#include "phy/sigmoid.h"

namespace wsan::phy {

double sinr_db(double signal_dbm, const double* interference_dbm,
               std::size_t count, double noise_floor_dbm) {
  double denom_mw = dbm_to_mw(noise_floor_dbm);
  for (std::size_t i = 0; i < count; ++i)
    denom_mw += dbm_to_mw(interference_dbm[i]);
  return signal_dbm - mw_to_dbm(denom_mw);
}

double sinr_db(double signal_dbm, const std::vector<double>& interference_dbm,
               double noise_floor_dbm) {
  return sinr_db(signal_dbm, interference_dbm.data(),
                 interference_dbm.size(), noise_floor_dbm);
}


double reception_probability(const capture_params& params, double signal_dbm,
                             const double* interference_dbm,
                             std::size_t count) {
  WSAN_REQUIRE(params.transition_width_db > 0.0,
               "transition width must be positive");
  const double standalone = prr_from_rssi(params.link, signal_dbm);
  if (count == 0) return standalone;

  const double sinr = sinr_db(signal_dbm, interference_dbm, count,
                              params.link.noise_floor_dbm);
  const double scale = params.transition_width_db / 4.0;
  const double capture_prob =
      clamped_sigmoid((sinr - params.capture_threshold_db) / scale);
  return standalone * capture_prob;
}

double reception_probability(const capture_params& params, double signal_dbm,
                             const std::vector<double>& interference_dbm) {
  return reception_probability(params, signal_dbm, interference_dbm.data(),
                               interference_dbm.size());
}

}  // namespace wsan::phy
