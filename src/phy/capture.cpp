#include "phy/capture.h"

#include <cmath>

#include "common/error.h"
#include "phy/dbm.h"

namespace wsan::phy {

double sinr_db(double signal_dbm, const std::vector<double>& interference_dbm,
               double noise_floor_dbm) {
  double denom_mw = dbm_to_mw(noise_floor_dbm);
  for (double i_dbm : interference_dbm) denom_mw += dbm_to_mw(i_dbm);
  return signal_dbm - mw_to_dbm(denom_mw);
}

namespace {

double clamped_sigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

double reception_probability(const capture_params& params, double signal_dbm,
                             const std::vector<double>& interference_dbm) {
  WSAN_REQUIRE(params.transition_width_db > 0.0,
               "transition width must be positive");
  const double standalone = prr_from_rssi(params.link, signal_dbm);
  if (interference_dbm.empty()) return standalone;

  const double sinr =
      sinr_db(signal_dbm, interference_dbm, params.link.noise_floor_dbm);
  const double scale = params.transition_width_db / 4.0;
  const double capture_prob =
      clamped_sigmoid((sinr - params.capture_threshold_db) / scale);
  return standalone * capture_prob;
}

}  // namespace wsan::phy
