// 3D positions for nodes deployed across building floors.
#pragma once

#include <cmath>

namespace wsan::phy {

/// Vertical spacing between floors, meters (typical office building).
inline constexpr double k_floor_height_m = 4.0;

struct position {
  double x = 0.0;  ///< meters
  double y = 0.0;  ///< meters
  int floor = 0;   ///< floor index, 0-based

  friend bool operator==(const position&, const position&) = default;
};

/// Euclidean distance including the vertical floor offset.
inline double distance_m(const position& a, const position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = (a.floor - b.floor) * k_floor_height_m;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

/// Number of floor slabs between two positions (for attenuation).
inline int floors_between(const position& a, const position& b) {
  return a.floor > b.floor ? a.floor - b.floor : b.floor - a.floor;
}

}  // namespace wsan::phy
