#include "phy/path_loss.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace wsan::phy {

double mean_path_loss_db(const path_loss_params& params, double distance_m,
                         int floors) {
  WSAN_REQUIRE(distance_m >= 0.0, "distance must be non-negative");
  WSAN_REQUIRE(floors >= 0, "floor count must be non-negative");
  const double d = std::max(distance_m, params.reference_distance_m);
  return params.pl_d0_db +
         10.0 * params.exponent *
             std::log10(d / params.reference_distance_m) +
         params.floor_attenuation_db * floors;
}

double mean_path_loss_db(const path_loss_params& params, const position& a,
                         const position& b) {
  return mean_path_loss_db(params, distance_m(a, b), floors_between(a, b));
}

}  // namespace wsan::phy
