// RSSI <-> PRR link model for CC2420-class 802.15.4 radios.
//
// The packet reception ratio follows a sigmoid around the receiver
// sensitivity: links well above sensitivity are near-perfect, links near
// it are "grey" — exactly the structure the paper's communication graph
// (PRR >= 0.9 in all channels) and channel-reuse graph (PRR > 0 in any
// channel) thresholds carve up.
#pragma once

namespace wsan::phy {

struct link_model_params {
  double noise_floor_dbm = -98.0;   ///< thermal noise + NF, 2 MHz channel
  double sensitivity_dbm = -87.0;   ///< ~50% PRR point (CC2420 class)
  double transition_width_db = 5.0; ///< width of the grey region
};

/// PRR in [0, 1] for a standalone (interference-free) reception at the
/// given received signal strength.
double prr_from_rssi(const link_model_params& params, double rssi_dbm);

/// PRR in [0, 1] as a function of SNR in dB (relative to the model's
/// sensitivity-over-noise operating point).
double prr_from_snr(const link_model_params& params, double snr_db);

/// Inverse of prr_from_rssi: the RSSI that yields the given PRR. PRR
/// values of exactly 0 or 1 map to the edges of the sigmoid's clamped
/// region, so round-tripping through prr_from_rssi is the identity.
double rssi_from_prr(const link_model_params& params, double prr);

}  // namespace wsan::phy
