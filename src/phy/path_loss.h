// Log-distance path-loss model with floor attenuation and per-link,
// per-channel shadowing.
//
// Used to synthesize the Indriya and WUSTL testbed PRR matrices
// (substitution documented in DESIGN.md §2) and reused by the network
// simulator so scheduled concurrent transmissions see consistent physics.
#pragma once

#include "phy/position.h"

namespace wsan::phy {

struct path_loss_params {
  double pl_d0_db = 40.0;        ///< path loss at reference distance d0
  double reference_distance_m = 1.0;
  /// Obstructed multi-wall office floors run n = 3.5-4.5 (Rappaport);
  /// the testbeds are corridor/office deployments, not open space.
  double exponent = 3.8;
  double floor_attenuation_db = 18.0;  ///< per concrete slab crossed
  double shadow_sigma_db = 4.0;  ///< log-normal shadowing std-dev
  /// Std-dev of the per-(link,channel) frequency-selective fading term.
  /// This is what makes a link good on channel 12 and grey on channel 19.
  double channel_fading_sigma_db = 1.2;
};

/// Deterministic (mean) path loss in dB over distance d crossing
/// `floors` slabs. Distances below the reference distance are clamped.
double mean_path_loss_db(const path_loss_params& params, double distance_m,
                         int floors);

/// Mean path loss between two node positions.
double mean_path_loss_db(const path_loss_params& params, const position& a,
                         const position& b);

}  // namespace wsan::phy
