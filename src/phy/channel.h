// IEEE 802.15.4 channel bookkeeping on the 2.4 GHz ISM band.
//
// TSCH can use up to 16 channels (11..26). The reliability experiments in
// the paper use channels 11-14, which overlap WiFi channel 1 — we model
// that overlap so external WiFi interference hits the right channels.
#pragma once

#include <vector>

#include "common/ids.h"

namespace wsan::phy {

inline constexpr channel_t k_first_channel = 11;
inline constexpr channel_t k_last_channel = 26;
inline constexpr int k_max_channels = 16;

/// True iff ch is a valid IEEE 802.15.4 2.4 GHz channel number.
bool is_valid_channel(channel_t ch);

/// Center frequency in MHz: 2405 + 5 * (ch - 11).
double center_frequency_mhz(channel_t ch);

/// Index of a channel within the full 16-channel band: ch - 11.
int channel_index(channel_t ch);

/// The first `count` channels starting at 11 — e.g. channels(4) = {11..14},
/// the set used in the paper's reliability experiments.
std::vector<channel_t> channels(int count);

/// The first `count` usable channels starting at 11, skipping the
/// blacklist — TSCH blacklisting of channels with extreme noise
/// (Section III-A), e.g. after WiFi interference is diagnosed. Throws if
/// fewer than `count` channels remain.
std::vector<channel_t> channels_excluding(
    int count, const std::vector<channel_t>& blacklist);

/// True iff the given 802.15.4 channel overlaps the 22 MHz-wide WiFi
/// (802.11b/g) channel. WiFi channel 1 (2412 MHz center) overlaps
/// 802.15.4 channels 11-14; WiFi 6 overlaps 16-19; WiFi 11 overlaps 21-24.
bool wifi_overlaps(int wifi_channel, channel_t ieee_channel);

/// WiFi channel center frequency in MHz: 2407 + 5 * wifi_channel (1..13).
double wifi_center_frequency_mhz(int wifi_channel);

}  // namespace wsan::phy
