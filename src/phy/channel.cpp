#include "phy/channel.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace wsan::phy {

bool is_valid_channel(channel_t ch) {
  return ch >= k_first_channel && ch <= k_last_channel;
}

double center_frequency_mhz(channel_t ch) {
  WSAN_REQUIRE(is_valid_channel(ch), "invalid 802.15.4 channel");
  return 2405.0 + 5.0 * (ch - k_first_channel);
}

int channel_index(channel_t ch) {
  WSAN_REQUIRE(is_valid_channel(ch), "invalid 802.15.4 channel");
  return ch - k_first_channel;
}

std::vector<channel_t> channels(int count) {
  WSAN_REQUIRE(count >= 1 && count <= k_max_channels,
               "channel count must be in [1, 16]");
  std::vector<channel_t> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(k_first_channel + i);
  return out;
}

std::vector<channel_t> channels_excluding(
    int count, const std::vector<channel_t>& blacklist) {
  WSAN_REQUIRE(count >= 1 && count <= k_max_channels,
               "channel count must be in [1, 16]");
  std::vector<channel_t> out;
  for (channel_t ch = k_first_channel;
       ch <= k_last_channel && static_cast<int>(out.size()) < count;
       ++ch) {
    if (std::find(blacklist.begin(), blacklist.end(), ch) ==
        blacklist.end())
      out.push_back(ch);
  }
  WSAN_REQUIRE(static_cast<int>(out.size()) == count,
               "blacklist leaves too few channels");
  return out;
}

double wifi_center_frequency_mhz(int wifi_channel) {
  WSAN_REQUIRE(wifi_channel >= 1 && wifi_channel <= 13,
               "WiFi channel must be in [1, 13]");
  return 2407.0 + 5.0 * wifi_channel;
}

bool wifi_overlaps(int wifi_channel, channel_t ieee_channel) {
  // An 802.11b/g channel is 22 MHz wide; an 802.15.4 channel is 2 MHz wide.
  // They overlap if the center distance is under (22 + 2) / 2 = 12 MHz.
  const double wifi_center = wifi_center_frequency_mhz(wifi_channel);
  const double ieee_center = center_frequency_mhz(ieee_channel);
  return std::abs(wifi_center - ieee_center) < 12.0;
}

}  // namespace wsan::phy
