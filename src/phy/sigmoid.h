// The clamped logistic shared by every PRR-shaped curve in the PHY
// layer (prr_from_rssi, the capture-probability transition) and by the
// simulator's inlined clean-PRR kernel.
#pragma once

#include <cmath>

namespace wsan::phy {

/// Saturation rail of the PRR sigmoid: beyond ±8 the logistic is
/// within 3.4e-4 of its asymptote, and the scalar models snap to
/// exactly 0/1 there so strong links are genuinely loss-free in
/// expectation and dead links genuinely dead (keeps graph construction
/// crisp). The batched fade-kernel tier's branch-free batch_sigmoid
/// (common/batch_rng.h) clamps its argument at this same rail but
/// returns the logistic value instead of snapping — a difference below
/// the statistical-equivalence gate's resolution (DESIGN.md §10).
inline constexpr double k_sigmoid_clamp = 8.0;

/// Logistic sigmoid with the 0/1 snap at the ±k_sigmoid_clamp rails.
inline double clamped_sigmoid(double x) {
  if (x > k_sigmoid_clamp) return 1.0;
  if (x < -k_sigmoid_clamp) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace wsan::phy
