// SINR-based reception with capture effect.
//
// The paper's channel-reuse policy relies on the capture effect: when two
// transmissions share a channel, a receiver still decodes its packet if
// its signal sufficiently dominates the interference (Section IV-C). This
// model computes the success probability of a reception given the desired
// signal power and the set of concurrent interfering powers. Interference
// is cumulative (Maheshwari et al., cited as [6][7] in the paper): more
// concurrent transmitters on a channel lower the SINR further.
#pragma once

#include <cstddef>
#include <vector>

#include "phy/link_model.h"

namespace wsan::phy {

struct capture_params {
  /// SINR (dB) at which capture succeeds half the time. Measured
  /// co-channel 802.15.4 capture sits around 3-5 dB SIR.
  double capture_threshold_db = 4.0;
  /// Width of the soft capture transition (dB). Measured PRR-vs-SINR
  /// curves have a wide grey region (~6 dB) rather than a sharp knee.
  double transition_width_db = 6.0;
  link_model_params link;
};

/// Success probability of receiving a packet with the given received
/// signal power while the given interfering powers (all in dBm, all on the
/// same physical channel at the receiver) are simultaneously active.
///
/// With no interference this reduces to the standalone PRR of the link.
/// With interference, the standalone PRR is multiplied by a soft capture
/// probability driven by the SINR margin over the capture threshold.
double reception_probability(const capture_params& params, double signal_dbm,
                             const std::vector<double>& interference_dbm);

/// Allocation-free variant over a raw interferer array: the simulator's
/// hot path hands sub-ranges of one pre-reserved scratch buffer instead
/// of materialising vectors per reception. `interference_dbm` may be
/// nullptr when `count` is 0. Bit-identical to the vector overload on
/// the same values in the same order.
double reception_probability(const capture_params& params, double signal_dbm,
                             const double* interference_dbm,
                             std::size_t count);

/// SINR in dB given signal and interferer powers plus the noise floor.
double sinr_db(double signal_dbm, const std::vector<double>& interference_dbm,
               double noise_floor_dbm);

/// Allocation-free variant of sinr_db over a raw interferer array.
double sinr_db(double signal_dbm, const double* interference_dbm,
               std::size_t count, double noise_floor_dbm);

}  // namespace wsan::phy
