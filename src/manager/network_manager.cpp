#include "manager/network_manager.h"

#include "common/error.h"
#include "phy/channel.h"

namespace wsan::manager {

network_manager::network_manager(topo::topology topology,
                                 manager_config config)
    : topology_(std::move(topology)),
      config_(std::move(config)),
      channels_(phy::channels(config_.num_channels)),
      comm_(graph::build_communication_graph(topology_, channels_,
                                             config_.comm)),
      reuse_(graph::build_channel_reuse_graph(topology_, channels_,
                                              config_.reuse)),
      reuse_hops_(reuse_) {
  config_.scheduler.num_channels = config_.num_channels;
}

flow::flow_set network_manager::generate_workload(
    const flow::flow_set_params& params, rng& gen) const {
  return flow::generate_flow_set(comm_, params, gen);
}

core::schedule_result network_manager::admit(
    const std::vector<flow::flow>& flows) const {
  auto config = config_.scheduler;
  config.isolated_links.insert(isolated_.begin(), isolated_.end());
  return core::schedule_flows(flows, reuse_hops_, config);
}

void network_manager::blacklist_channels(
    const std::vector<channel_t>& blacklist) {
  channels_ = phy::channels_excluding(config_.num_channels, blacklist);
  comm_ = graph::build_communication_graph(topology_, channels_,
                                           config_.comm);
  reuse_ = graph::build_channel_reuse_graph(topology_, channels_,
                                            config_.reuse);
  reuse_hops_ = graph::hop_matrix(reuse_);
}

network_manager::maintenance_outcome network_manager::maintain(
    const std::vector<flow::flow>& flows,
    const std::map<sim::link_key, sim::link_observations>& observations) {
  maintenance_outcome outcome;
  outcome.reports =
      detect::classify_links(observations, config_.detection);
  const auto flagged = detect::isolation_set(outcome.reports);
  for (const auto& link : flagged) {
    if (isolated_.insert(link).second)
      outcome.newly_isolated.insert(link);
  }
  if (!outcome.newly_isolated.empty()) {
    auto config = config_.scheduler;
    auto repaired = core::reschedule_isolating(flows, reuse_hops_, config,
                                               isolated_);
    outcome.rescheduled = true;
    outcome.repaired = std::move(repaired.result);
  }
  return outcome;
}

}  // namespace wsan::manager
