#include "manager/network_manager.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "flow/router.h"
#include "graph/algorithms.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "phy/channel.h"

namespace wsan::manager {

network_manager::network_manager(topo::topology topology,
                                 manager_config config)
    : topology_(std::move(topology)),
      config_(std::move(config)),
      channels_(phy::channels(config_.num_channels)),
      comm_(graph::build_communication_graph(topology_, channels_,
                                             config_.comm)),
      reuse_(graph::build_channel_reuse_graph(topology_, channels_,
                                              config_.reuse)),
      reuse_hops_(reuse_) {
  config_.scheduler.num_channels = config_.num_channels;
  // Isolation state has exactly one owner: isolated_. Links the caller
  // pre-seeded into the scheduler config are adopted here, and the
  // stored config's set stays empty from now on (see
  // effective_scheduler_config).
  isolated_ = std::move(config_.scheduler.isolated_links);
  config_.scheduler.isolated_links.clear();
  WSAN_REQUIRE(config_.watchdog_epochs >= 1,
               "watchdog must allow at least one missed epoch");
}

core::scheduler_config network_manager::effective_scheduler_config()
    const {
  auto config = config_.scheduler;
  config.isolated_links = isolated_;
  return config;
}

flow::flow_set network_manager::generate_workload(
    const flow::flow_set_params& params, rng& gen) const {
  return flow::generate_flow_set(comm_, params, gen);
}

core::schedule_result network_manager::admit(
    const std::vector<flow::flow>& flows) const {
  OBS_SPAN("manager.admit");
  // Admission latency distribution (microseconds, wall-clock — a
  // measurement like span total_ns, not part of the deterministic
  // science): exponential buckets 1us .. ~260ms.
  static const obs::histogram admit_hist = obs::register_histogram(
      "manager.admit_us", obs::exponential_bounds(1.0, 4.0, 10));
  const auto start = obs::enabled()
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  auto result =
      core::schedule_flows(flows, reuse_hops_, effective_scheduler_config());
  if (obs::enabled())
    admit_hist.observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
  if (obs::events_enabled())
    obs::emit(result.schedulable ? obs::severity::info
                                 : obs::severity::warning,
              "manager", "admission",
              {{"flows", flows.size()},
               {"schedulable", result.schedulable}});
  return result;
}

void network_manager::blacklist_channels(
    const std::vector<channel_t>& blacklist) {
  channels_ = phy::channels_excluding(config_.num_channels, blacklist);
  comm_ = graph::build_communication_graph(topology_, channels_,
                                           config_.comm);
  reuse_ = graph::build_channel_reuse_graph(topology_, channels_,
                                            config_.reuse);
  reuse_hops_ = graph::hop_matrix(reuse_);
}

network_manager::maintenance_outcome network_manager::maintain(
    const std::vector<flow::flow>& flows,
    const std::map<sim::link_key, sim::link_observations>& observations) {
  OBS_SPAN("manager.maintain");
  maintenance_outcome outcome;
  outcome.reports =
      detect::classify_links(observations, config_.detection);
  const auto flagged = detect::isolation_set(outcome.reports);
  for (const auto& link : flagged) {
    if (isolated_.insert(link).second) {
      outcome.newly_isolated.insert(link);
      obs::add_counter("manager.links_isolated");
      if (obs::events_enabled())
        obs::emit(obs::severity::warning, "manager", "link_isolated",
                  {{"sender", link.first}, {"receiver", link.second}});
    }
  }
  if (!outcome.newly_isolated.empty()) {
    // The flagged links are already merged into isolated_ above, so the
    // one effective config covers them; no second merge to drift from.
    outcome.rescheduled = true;
    outcome.repaired = core::schedule_flows(flows, reuse_hops_,
                                            effective_scheduler_config());
  }
  return outcome;
}

void network_manager::mark_dead(node_id node) {
  WSAN_REQUIRE(node >= 0 && node < topology_.num_nodes(),
               "node id out of range");
  dead_.insert(node);
  silent_epochs_.erase(node);
}

network_manager::recovery_outcome network_manager::recover(
    const std::vector<flow::flow>& flows,
    const std::map<sim::link_key, sim::link_observations>& observations) {
  OBS_SPAN("manager.recover");
  recovery_outcome outcome;
  outcome.epoch = epoch_++;
  obs::add_counter("manager.recover_epochs");

  std::set<node_id> heard;
  for (const auto& [key, obs] : observations)
    if (!obs.reuse_samples.empty() || !obs.cf_samples.empty())
      heard.insert(key.sender);

  // Rehabilitation: a report is proof of life, so a node previously
  // declared dead whose reports resume leaves the dead set at once (a
  // flapping node is re-admitted, not permanently blacklisted). Any
  // report also resets the sender's silent-epoch counter — receipt is
  // receipt, whether or not the node is currently expected.
  for (const node_id node : heard) {
    silent_epochs_.erase(node);
    if (dead_.erase(node) > 0) {
      outcome.rehabilitated.push_back(node);
      obs::add_counter("manager.nodes_rehabilitated");
      if (obs::events_enabled())
        obs::emit(obs::severity::info, "manager", "node_rehabilitated",
                  {{"node", node}, {"epoch", outcome.epoch}});
    }
  }

  // Watchdog: every sender in the routed workload owes health reports
  // (it reports its outgoing links' statistics). Nodes still declared
  // dead owe nothing.
  std::set<node_id> expected;
  for (const auto& f : flows)
    for (const auto& l : f.route)
      if (dead_.count(l.sender) == 0) expected.insert(l.sender);

  for (node_id node : expected) {
    if (heard.count(node) > 0) {
      silent_epochs_.erase(node);
      continue;
    }
    outcome.silent_nodes.push_back(node);
    const int silent = ++silent_epochs_[node];
    if (obs::events_enabled())
      obs::emit(obs::severity::info, "manager", "watchdog_silent",
                {{"node", node},
                 {"epoch", outcome.epoch},
                 {"silent_epochs", silent}});
    if (silent >= config_.watchdog_epochs) {
      dead_.insert(node);
      silent_epochs_.erase(node);
      outcome.newly_dead.push_back(node);
      outcome.detection_latency_epochs =
          std::max(outcome.detection_latency_epochs, silent);
      obs::add_counter("manager.nodes_declared_dead");
      if (obs::events_enabled())
        obs::emit(obs::severity::warning, "manager", "node_declared_dead",
                  {{"node", node},
                   {"epoch", outcome.epoch},
                   {"silent_epochs", silent}});
    }
  }
  if (outcome.newly_dead.empty()) return outcome;

  // Recovery: route the workload around the dead set, drop what cannot
  // be carried, then shed by priority until the remainder fits.
  //
  // Reported ids must name flows of the ORIGINAL workload. After a
  // first recovery the caller redistributes surviving_flows, which are
  // renumbered densely — so on a second crash the input ids are the
  // previous epoch's dense ranks, not original ids. lineage_ carries
  // the dense-to-original mapping across epochs; when it does not match
  // the input (fresh workload, or first recovery), the input's own ids
  // are the originals.
  std::vector<flow_id> roots;
  if (lineage_.size() == flows.size()) {
    roots = lineage_;
  } else {
    roots.reserve(flows.size());
    for (const auto& f : flows) roots.push_back(f.id);
  }

  const auto pruned = graph::remove_nodes(comm_, dead_);
  std::vector<flow::flow> survivors;
  std::vector<flow_id> original_ids;
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    const auto& f = flows[fi];
    const flow_id original = roots[fi];
    const bool touches_dead =
        dead_.count(f.source) > 0 || dead_.count(f.destination) > 0 ||
        std::any_of(f.route.begin(), f.route.end(), [&](const auto& l) {
          return dead_.count(l.sender) > 0 || dead_.count(l.receiver) > 0;
        });
    if (!touches_dead) {
      survivors.push_back(f);
      original_ids.push_back(original);
      continue;
    }
    const auto rerouted = flow::reroute_flow(pruned, f, dead_);
    if (!rerouted) {
      outcome.unroutable_flows.push_back(original);
      obs::add_counter("manager.flows_unroutable");
      if (obs::events_enabled())
        obs::emit(obs::severity::warning, "manager", "flow_unroutable",
                  {{"flow", original}, {"epoch", outcome.epoch}});
      continue;
    }
    flow::flow repaired = f;
    repaired.route = rerouted->links;
    repaired.uplink_links = rerouted->uplink_links;
    flow::validate_flow(repaired);
    outcome.rerouted_flows.push_back(original);
    obs::add_counter("manager.flows_rerouted");
    if (obs::events_enabled())
      obs::emit(obs::severity::info, "manager", "flow_rerouted",
                {{"flow", original},
                 {"epoch", outcome.epoch},
                 {"hops", repaired.route.size()}});
    survivors.push_back(std::move(repaired));
    original_ids.push_back(original);
  }
  // Renumber densely: relative order (and therefore the fixed-priority
  // assignment) is preserved, ids become priority ranks again.
  for (std::size_t i = 0; i < survivors.size(); ++i)
    survivors[i].id = static_cast<flow_id>(i);

  auto shed = core::schedule_shedding(std::move(survivors), reuse_hops_,
                                      effective_scheduler_config());
  for (flow_id dense : shed.shed) {
    const flow_id original = original_ids[static_cast<std::size_t>(dense)];
    outcome.shed_flows.push_back(original);
    obs::add_counter("manager.flows_shed");
    if (obs::events_enabled())
      obs::emit(obs::severity::warning, "manager", "flow_shed",
                {{"flow", original}, {"epoch", outcome.epoch}});
  }
  outcome.surviving_flows = std::move(shed.kept);
  outcome.surviving_original_ids.reserve(shed.kept_input_ids.size());
  for (const flow_id dense : shed.kept_input_ids)
    outcome.surviving_original_ids.push_back(
        original_ids[static_cast<std::size_t>(dense)]);
  // Next epoch's input is surviving_flows; remember its original ids.
  lineage_ = outcome.surviving_original_ids;
  outcome.rescheduled = true;
  outcome.repaired = std::move(shed.result);
  return outcome;
}

}  // namespace wsan::manager
