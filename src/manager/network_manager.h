// The WirelessHART network manager (Section III).
//
// The manager owns the network lifecycle: it holds the collected
// topology, derives the communication and channel-reuse graphs, routes
// and schedules workloads, consumes the nodes' health reports, runs the
// reliability-degradation classifier, and repairs the schedule by
// isolating links that channel reuse degrades. This facade is the
// public entry point a deployment would use; the lower-level modules
// remain available for research workflows.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/rescheduler.h"
#include "core/scheduler.h"
#include "detect/detector.h"
#include "flow/flow_generator.h"
#include "graph/comm_graph.h"
#include "graph/hop_matrix.h"
#include "graph/reuse_graph.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace wsan::manager {

struct manager_config {
  /// Number of channels in use (channels 11..11+n-1).
  int num_channels = 4;
  graph::comm_graph_options comm;
  graph::reuse_graph_options reuse;
  /// Scheduling configuration; num_channels is kept in sync with the
  /// manager's channel count.
  core::scheduler_config scheduler = core::make_config(
      core::algorithm::rc, 4);
  detect::detection_policy detection;
  /// Health-report watchdog (recover()): a node expected to report whose
  /// reports miss this many consecutive epochs is declared dead. A
  /// silent node is indistinguishable from a crashed one — exactly the
  /// WirelessHART manager's situation — so the watchdog is the manager's
  /// only crash detector.
  int watchdog_epochs = 2;
};

class network_manager {
 public:
  /// Builds the manager from a collected topology: derives the channel
  /// list, the communication graph, the channel-reuse graph, and its
  /// hop matrix.
  network_manager(topo::topology topology, manager_config config);

  const topo::topology& topology() const { return topology_; }
  const std::vector<channel_t>& channels() const { return channels_; }
  const graph::graph& communication_graph() const { return comm_; }
  const graph::graph& reuse_graph() const { return reuse_; }
  const graph::hop_matrix& reuse_hops() const { return reuse_hops_; }
  const core::link_set& isolated_links() const { return isolated_; }

  /// Generates a random workload on this network (routes included).
  flow::flow_set generate_workload(const flow::flow_set_params& params,
                                   rng& gen) const;

  /// Admits a workload: schedules it under the configured policy plus
  /// any accumulated link isolations. The result's schedulable flag is
  /// the admission decision.
  core::schedule_result admit(const std::vector<flow::flow>& flows) const;

  /// One maintenance cycle (a health-report epoch): classify every
  /// reuse-associated link from the reported observations; if any link
  /// is degraded by channel reuse, isolate it and recompute the
  /// schedule.
  struct maintenance_outcome {
    std::vector<detect::link_report> reports;
    core::link_set newly_isolated;
    bool rescheduled = false;
    /// The repaired schedule when rescheduled is true.
    std::optional<core::schedule_result> repaired;
  };

  maintenance_outcome maintain(
      const std::vector<flow::flow>& flows,
      const std::map<sim::link_key, sim::link_observations>& observations);

  /// One fault-recovery epoch. The watchdog side: every node that
  /// appears as a sender in the flows' routes is expected to deliver
  /// health reports (it is the reporter of its outgoing links); a node
  /// whose reports miss `watchdog_epochs` consecutive epochs is declared
  /// dead. The recovery side: flows riding a dead node are re-routed
  /// around it on the pruned communication graph; flows whose endpoint
  /// or access-point infrastructure died are dropped; and when the
  /// repaired workload no longer fits, load is shed in priority order
  /// (core::schedule_shedding) until the remainder is schedulable.
  struct recovery_outcome {
    /// Maintenance epoch index (0-based, counts recover() calls).
    int epoch = 0;
    /// Expected reporters not heard from this epoch (watchdog counting).
    std::vector<node_id> silent_nodes;
    /// Nodes declared dead this epoch.
    std::vector<node_id> newly_dead;
    /// Previously-dead nodes whose health reports resumed this epoch.
    /// They are removed from the dead set immediately (a reporting node
    /// is alive by definition); re-routing flows back over them is the
    /// caller's decision at the next admission.
    std::vector<node_id> rehabilitated;
    /// Consecutive silent epochs before the declaration (0 when no node
    /// was declared dead this epoch) — the detection latency.
    int detection_latency_epochs = 0;
    /// Original ids of flows re-routed around dead nodes.
    std::vector<flow_id> rerouted_flows;
    /// Original ids of flows with no surviving route (dead endpoint,
    /// dead access point, or partitioned network). Always dropped.
    std::vector<flow_id> unroutable_flows;
    /// Original ids of flows shed for schedulability, in drop order
    /// (lowest priority first).
    std::vector<flow_id> shed_flows;
    /// True iff a node died this epoch and a new schedule was computed.
    bool rescheduled = false;
    /// The repaired schedule (for surviving_flows) when rescheduled.
    std::optional<core::schedule_result> repaired;
    /// Surviving workload with dense re-assigned ids (priority order
    /// preserved) — what the manager distributes next.
    std::vector<flow::flow> surviving_flows;
    /// Original id of each surviving flow, aligned with surviving_flows.
    std::vector<flow_id> surviving_original_ids;
  };

  /// Feeds one epoch of health reports to the watchdog and repairs the
  /// network when nodes are declared dead. `observations` are this
  /// epoch's reports only (one simulator execution per epoch, as in
  /// maintain()).
  ///
  /// Original-id reporting composes across epochs: after a recovery the
  /// caller redistributes `surviving_flows` (renumbered densely) and
  /// feeds them back into the next recover() call; the manager keeps
  /// the dense-to-original lineage so that ids reported by a *second*
  /// crash still name the flows of the originally admitted workload,
  /// not the renumbered intermediates. Passing a workload of a
  /// different size resets the lineage to that workload's own ids (as
  /// does reset_watchdog()).
  recovery_outcome recover(
      const std::vector<flow::flow>& flows,
      const std::map<sim::link_key, sim::link_observations>& observations);

  /// Nodes the watchdog (or an operator via mark_dead) declared dead.
  const std::set<node_id>& dead_nodes() const { return dead_; }

  /// Declares a node dead out-of-band (operator knowledge, e.g. a
  /// planned decommissioning). The next recover() routes around it.
  void mark_dead(node_id node);

  /// Forgets all deaths, watchdog counters, and the flow-id lineage
  /// (e.g. after the field crew replaced the hardware and a fresh
  /// workload was admitted).
  void reset_watchdog() {
    dead_.clear();
    silent_epochs_.clear();
    lineage_.clear();
  }

  /// Forgets only the flow-id lineage, keeping deaths and watchdog
  /// counters. Callers that edit the workload's composition between
  /// recoveries (scenario churn: arrivals and departures) must call this
  /// — a coincidentally size-matched workload would otherwise be mapped
  /// through the stale dense-to-original lineage.
  void reset_flow_lineage() { lineage_.clear(); }

  /// Drops all accumulated isolations (e.g. after the interference
  /// environment changed and the links were re-validated).
  void reset_isolations() { isolated_.clear(); }

  /// Blacklists channels (TSCH channel blacklisting, Section III-A —
  /// e.g. the four channels a diagnosed WiFi access point jams) and
  /// rebuilds the channel list and both graphs from the remaining
  /// spectrum. Existing schedules must be re-admitted afterwards;
  /// accumulated isolations are kept (they describe node geometry, not
  /// channels). Throws if fewer than num_channels usable channels
  /// remain.
  void blacklist_channels(const std::vector<channel_t>& blacklist);

 private:
  /// The scheduler configuration every scheduling path must use:
  /// config_.scheduler with the manager-owned isolation set applied.
  /// isolated_ is the single owner of isolation state — the stored
  /// config's own isolated_links is drained into it at construction
  /// and stays empty from then on, so admit/maintain/recover cannot
  /// diverge on which links are isolated.
  core::scheduler_config effective_scheduler_config() const;

  topo::topology topology_;
  manager_config config_;
  std::vector<channel_t> channels_;
  graph::graph comm_;
  graph::graph reuse_;
  graph::hop_matrix reuse_hops_;
  core::link_set isolated_;
  // Fault-recovery state.
  std::set<node_id> dead_;
  std::map<node_id, int> silent_epochs_;  // consecutive missed epochs
  int epoch_ = 0;                         // recover() calls so far
  /// lineage_[dense_id] = original id of the flow currently numbered
  /// dense_id, composed across recovery renumberings (see recover()).
  /// Empty until the first recovery renumbers a workload.
  std::vector<flow_id> lineage_;
};

}  // namespace wsan::manager
