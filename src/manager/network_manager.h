// The WirelessHART network manager (Section III).
//
// The manager owns the network lifecycle: it holds the collected
// topology, derives the communication and channel-reuse graphs, routes
// and schedules workloads, consumes the nodes' health reports, runs the
// reliability-degradation classifier, and repairs the schedule by
// isolating links that channel reuse degrades. This facade is the
// public entry point a deployment would use; the lower-level modules
// remain available for research workflows.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/rescheduler.h"
#include "core/scheduler.h"
#include "detect/detector.h"
#include "flow/flow_generator.h"
#include "graph/comm_graph.h"
#include "graph/hop_matrix.h"
#include "graph/reuse_graph.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace wsan::manager {

struct manager_config {
  /// Number of channels in use (channels 11..11+n-1).
  int num_channels = 4;
  graph::comm_graph_options comm;
  graph::reuse_graph_options reuse;
  /// Scheduling configuration; num_channels is kept in sync with the
  /// manager's channel count.
  core::scheduler_config scheduler = core::make_config(
      core::algorithm::rc, 4);
  detect::detection_policy detection;
};

class network_manager {
 public:
  /// Builds the manager from a collected topology: derives the channel
  /// list, the communication graph, the channel-reuse graph, and its
  /// hop matrix.
  network_manager(topo::topology topology, manager_config config);

  const topo::topology& topology() const { return topology_; }
  const std::vector<channel_t>& channels() const { return channels_; }
  const graph::graph& communication_graph() const { return comm_; }
  const graph::graph& reuse_graph() const { return reuse_; }
  const graph::hop_matrix& reuse_hops() const { return reuse_hops_; }
  const core::link_set& isolated_links() const { return isolated_; }

  /// Generates a random workload on this network (routes included).
  flow::flow_set generate_workload(const flow::flow_set_params& params,
                                   rng& gen) const;

  /// Admits a workload: schedules it under the configured policy plus
  /// any accumulated link isolations. The result's schedulable flag is
  /// the admission decision.
  core::schedule_result admit(const std::vector<flow::flow>& flows) const;

  /// One maintenance cycle (a health-report epoch): classify every
  /// reuse-associated link from the reported observations; if any link
  /// is degraded by channel reuse, isolate it and recompute the
  /// schedule.
  struct maintenance_outcome {
    std::vector<detect::link_report> reports;
    core::link_set newly_isolated;
    bool rescheduled = false;
    /// The repaired schedule when rescheduled is true.
    std::optional<core::schedule_result> repaired;
  };

  maintenance_outcome maintain(
      const std::vector<flow::flow>& flows,
      const std::map<sim::link_key, sim::link_observations>& observations);

  /// Drops all accumulated isolations (e.g. after the interference
  /// environment changed and the links were re-validated).
  void reset_isolations() { isolated_.clear(); }

  /// Blacklists channels (TSCH channel blacklisting, Section III-A —
  /// e.g. the four channels a diagnosed WiFi access point jams) and
  /// rebuilds the channel list and both graphs from the remaining
  /// spectrum. Existing schedules must be re-admitted afterwards;
  /// accumulated isolations are kept (they describe node geometry, not
  /// channels). Throws if fewer than num_channels usable channels
  /// remain.
  void blacklist_channels(const std::vector<channel_t>& blacklist);

 private:
  topo::topology topology_;
  manager_config config_;
  std::vector<channel_t> channels_;
  graph::graph comm_;
  graph::graph reuse_;
  graph::hop_matrix reuse_hops_;
  core::link_set isolated_;
};

}  // namespace wsan::manager
