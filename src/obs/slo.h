// Declarative SLOs over metric series (DESIGN.md §15).
//
// A policy is a list of per-window threshold rules — "pdr must stay
// >= 0.9", "recovery_failed must stay <= 0" — each with a severity.
// evaluate_window() checks one window (the per-epoch path engines use
// to trip the flight recorder the moment a rule breaks) and
// evaluate_slo() folds a whole series into a health_verdict: healthy
// iff no error-severity rule was violated in any window. Violations
// are emitted as obs events (component "slo") when events are enabled,
// so a --trace file interleaves them with the engine's own events.
//
// Rules reference window *scalar* values by name; windows that do not
// carry the metric are skipped (a fleet series has no "pdr", a
// scenario series has no "admit_p99_us" — one policy can serve both).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/events.h"
#include "obs/timeseries.h"

namespace wsan::obs {

enum class slo_kind {
  upper_bound,  ///< violated when value > bound
  lower_bound,  ///< violated when value < bound
};

std::string_view to_string(slo_kind kind);

struct slo_rule {
  std::string metric;  ///< window value name, e.g. "pdr"
  slo_kind kind = slo_kind::upper_bound;
  double bound = 0.0;
  severity sev = severity::error;
};

struct slo_policy {
  std::vector<slo_rule> rules;
  bool empty() const { return rules.empty(); }
};

struct slo_violation {
  std::int64_t window_index = 0;
  std::string metric;
  double value = 0.0;
  double bound = 0.0;
  slo_kind kind = slo_kind::upper_bound;
  severity sev = severity::error;
};

struct health_verdict {
  /// True iff no error-severity violation (warnings stay healthy).
  bool healthy = true;
  int windows_evaluated = 0;
  std::vector<slo_violation> violations;

  int errors() const;
  int warnings() const;
};

/// The scenario-engine policy used by `wsanctl health` defaults and the
/// churn bench: PDR floor, rejection-rate ceiling, recovery-retry
/// exhaustion, jammer hit-rate ceiling.
slo_policy default_scenario_policy();

/// The fleet policy: admission p99 latency ceiling (measurement;
/// microseconds) and rejection-rate ceiling.
slo_policy default_fleet_policy(double admit_p99_us);

/// Checks one window against the policy, appending violations and
/// emitting one obs event per violation. Returns the number appended.
int evaluate_window(const series_window& w, const slo_policy& policy,
                    std::vector<slo_violation>& out);

/// Folds a whole series into a verdict (emits events per violation).
health_verdict evaluate_slo(const series& s, const slo_policy& policy);

}  // namespace wsan::obs
