// Scoped tracing spans (DESIGN.md §9).
//
// OBS_SPAN("core.find_slot"); opens an RAII span that, when
// observability is enabled at runtime, records one steady-clock
// duration into the metrics registry's per-thread shard (two counter
// slots: invocation count and total nanoseconds). Spans nest freely —
// each level accounts its own wall time, and the per-thread nesting
// depth is exposed for tests and tooling. Aggregation shares the
// registry's merge machinery, so span *counts* are deterministic for
// deterministic workloads while total_ns is a measurement and lives in
// the clearly non-deterministic "timings" section of reports.
//
// When the library is compiled with WSAN_OBS=OFF the macro expands to
// nothing and the span class is an empty shell, so instrumented hot
// paths carry zero code.
#pragma once

#include <chrono>
#include <string_view>

#include "obs/metrics.h"

namespace wsan::obs {

/// Interned per-name span aggregate; cache in a static next to the
/// instrumented code (OBS_SPAN does exactly that).
class span_stat {
 public:
  span_stat() = default;

 private:
  friend class span;
  friend span_stat register_span(std::string_view name);
  slot_t first_slot_ = k_invalid_slot;
};

#if WSAN_OBS_ENABLED
span_stat register_span(std::string_view name);
/// Number of spans currently open on this thread (0 outside any span).
int span_depth();
namespace detail {
void enter_span();
void leave_span();
}  // namespace detail
#else
inline span_stat register_span(std::string_view) { return {}; }
inline constexpr int span_depth() { return 0; }
#endif

/// One timed scope. Reads the clock only when observability is enabled
/// at construction time; a span that started enabled records even if
/// observability is switched off mid-scope (the cheap flag is checked
/// once, on entry).
class span {
 public:
  explicit span(const span_stat& stat) {
#if WSAN_OBS_ENABLED
    if (!enabled() || stat.first_slot_ == k_invalid_slot) return;
    first_slot_ = stat.first_slot_;
    detail::enter_span();
    start_ = std::chrono::steady_clock::now();
#else
    (void)stat;
#endif
  }

  ~span() {
#if WSAN_OBS_ENABLED
    if (first_slot_ == k_invalid_slot) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count();
    obs::detail::shard_add(first_slot_, 1);
    obs::detail::shard_add(first_slot_ + 1,
                           static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
    detail::leave_span();
#endif
  }

  span(const span&) = delete;
  span& operator=(const span&) = delete;

 private:
#if WSAN_OBS_ENABLED
  slot_t first_slot_ = k_invalid_slot;
  std::chrono::steady_clock::time_point start_{};
#endif
};

}  // namespace wsan::obs

#define WSAN_OBS_CONCAT_IMPL(a, b) a##b
#define WSAN_OBS_CONCAT(a, b) WSAN_OBS_CONCAT_IMPL(a, b)

#if WSAN_OBS_ENABLED
#define WSAN_OBS_SPAN_IMPL(name, id)                         \
  static const ::wsan::obs::span_stat WSAN_OBS_CONCAT(       \
      wsan_obs_stat_, id) = ::wsan::obs::register_span(name); \
  const ::wsan::obs::span WSAN_OBS_CONCAT(wsan_obs_span_,    \
                                          id)(               \
      WSAN_OBS_CONCAT(wsan_obs_stat_, id))
/// Times the rest of the enclosing scope under `name`. Registration
/// happens once (thread-safe static); recording costs one enabled()
/// check when off and two clock reads when on.
#define OBS_SPAN(name) WSAN_OBS_SPAN_IMPL(name, __COUNTER__)
#else
#define OBS_SPAN(name) ((void)0)
#endif
