#include "obs/metrics.h"

#if WSAN_OBS_ENABLED

#include <array>
#include <atomic>
#include <deque>
#include <mutex>

#include "common/error.h"

namespace wsan::obs {

namespace {

/// Total slots available to counters, histogram buckets, and span
/// aggregates. 4096 x 8 bytes = 32 KiB per recording thread.
constexpr std::size_t k_max_slots = 4096;

enum class metric_kind : std::uint8_t { counter, histogram, span };

struct metric_meta {
  std::string name;
  metric_kind kind = metric_kind::counter;
  slot_t first_slot = k_invalid_slot;
  slot_t num_slots = 0;
  std::vector<double> bounds;  // histograms only; address-stable
};

struct shard {
  std::array<std::atomic<std::uint64_t>, k_max_slots> slots{};
};

struct registry_state {
  std::mutex mu;
  // Metadata lives in a deque so element addresses (notably the interned
  // histogram bounds) stay stable across registrations.
  std::deque<metric_meta> metrics;
  std::map<std::string, std::size_t, std::less<>> by_name;
  slot_t next_slot = 0;
  std::map<std::string, double, std::less<>> gauges;
  std::vector<shard*> live;
  std::array<std::uint64_t, k_max_slots> retired{};
};

registry_state& registry() {
  static registry_state* state = new registry_state();  // never destroyed
  return *state;
}

std::atomic<bool> g_enabled{false};

/// Registers the calling thread's shard on construction and folds its
/// values into the retired totals when the thread exits, so snapshots
/// taken after a worker joined still see everything it recorded.
struct tls_shard {
  shard s;

  tls_shard() {
    auto& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    reg.live.push_back(&s);
  }

  ~tls_shard() {
    auto& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    for (std::size_t i = 0; i < k_max_slots; ++i)
      reg.retired[i] += s.slots[i].load(std::memory_order_relaxed);
    for (auto it = reg.live.begin(); it != reg.live.end(); ++it) {
      if (*it == &s) {
        reg.live.erase(it);
        break;
      }
    }
  }
};

/// Interns `name` as a metric of `kind` occupying `num_slots` slots.
/// Idempotent for an equal (name, kind) pair.
const metric_meta& intern(std::string_view name, metric_kind kind,
                          slot_t num_slots,
                          std::vector<double> bounds = {}) {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  if (const auto it = reg.by_name.find(name); it != reg.by_name.end()) {
    const auto& existing = reg.metrics[it->second];
    WSAN_REQUIRE(existing.kind == kind,
                 "metric registered twice with different kinds: " +
                     std::string(name));
    if (kind == metric_kind::histogram)
      WSAN_REQUIRE(existing.bounds == bounds,
                   "histogram registered twice with different buckets: " +
                       std::string(name));
    return existing;
  }
  WSAN_REQUIRE(reg.next_slot + num_slots <= k_max_slots,
               "observability slot arena exhausted");
  metric_meta meta;
  meta.name = std::string(name);
  meta.kind = kind;
  meta.first_slot = reg.next_slot;
  meta.num_slots = num_slots;
  meta.bounds = std::move(bounds);
  reg.next_slot += num_slots;
  reg.metrics.push_back(std::move(meta));
  reg.by_name.emplace(reg.metrics.back().name, reg.metrics.size() - 1);
  return reg.metrics.back();
}

}  // namespace

namespace detail {

void shard_add(slot_t slot, std::uint64_t delta) {
  thread_local tls_shard tls;
  tls.s.slots[slot].fetch_add(delta, std::memory_order_relaxed);
}

bool enabled_impl() { return g_enabled.load(std::memory_order_relaxed); }

slot_t register_span_slots(std::string_view name) {
  return intern(name, metric_kind::span, 2).first_slot;
}

}  // namespace detail

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

counter register_counter(std::string_view name) {
  counter c;
  c.slot_ = intern(name, metric_kind::counter, 1).first_slot;
  return c;
}

histogram register_histogram(std::string_view name,
                             std::vector<double> upper_bounds) {
  for (std::size_t i = 1; i < upper_bounds.size(); ++i)
    WSAN_REQUIRE(upper_bounds[i - 1] < upper_bounds[i],
                 "histogram bounds must be strictly increasing");
  // Take the size before the move: argument evaluation order is
  // unspecified, so computing it inline could read a moved-from vector.
  const auto num_slots = static_cast<slot_t>(upper_bounds.size() + 1);
  const auto& meta = intern(name, metric_kind::histogram, num_slots,
                            std::move(upper_bounds));
  histogram h;
  h.first_slot_ = meta.first_slot;
  h.num_bounds_ = static_cast<slot_t>(meta.bounds.size());
  h.bounds_ = meta.bounds.data();
  return h;
}

void add_counter(std::string_view name, std::uint64_t delta) {
  register_counter(name).add(delta);
}

void set_gauge(std::string_view name, double value) {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  if (const auto it = reg.gauges.find(name); it != reg.gauges.end())
    it->second = value;
  else
    reg.gauges.emplace(std::string(name), value);
}

snapshot take_snapshot() {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  std::array<std::uint64_t, k_max_slots> totals = reg.retired;
  for (const shard* s : reg.live)
    for (slot_t i = 0; i < reg.next_slot; ++i)
      totals[i] += s->slots[i].load(std::memory_order_relaxed);

  snapshot snap;
  snap.gauges.insert(reg.gauges.begin(), reg.gauges.end());
  for (const auto& meta : reg.metrics) {
    switch (meta.kind) {
      case metric_kind::counter:
        snap.counters[meta.name] = totals[meta.first_slot];
        break;
      case metric_kind::histogram: {
        histogram_snapshot h;
        h.upper_bounds = meta.bounds;
        h.counts.assign(totals.begin() + meta.first_slot,
                        totals.begin() + meta.first_slot + meta.num_slots);
        snap.histograms.emplace(meta.name, std::move(h));
        break;
      }
      case metric_kind::span: {
        span_snapshot s;
        s.count = totals[meta.first_slot];
        s.total_ns = totals[meta.first_slot + 1];
        snap.spans.emplace(meta.name, s);
        break;
      }
    }
  }
  return snap;
}

void reset_metrics() {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.retired.fill(0);
  for (shard* s : reg.live)
    for (auto& slot : s->slots) slot.store(0, std::memory_order_relaxed);
  reg.gauges.clear();
}

}  // namespace wsan::obs

#endif  // WSAN_OBS_ENABLED
