#include "obs/flight_recorder.h"

#include <fstream>
#include <utility>

#include "common/error.h"

namespace wsan::obs {

tee_sink::tee_sink(std::vector<std::shared_ptr<event_sink>> sinks)
    : sinks_(std::move(sinks)) {}

void tee_sink::consume(const event& ev) {
  // Forward unfiltered: each child applies its own min_severity.
  for (const auto& sink : sinks_)
    if (sink) sink->consume(ev);
}

flight_recorder::flight_recorder(config cfg) : cfg_(std::move(cfg)) {
  WSAN_REQUIRE(cfg_.event_capacity > 0 && cfg_.window_capacity > 0,
               "flight_recorder capacities must be positive");
}

void flight_recorder::consume(const event& ev) {
  if (!accepts(ev)) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() == cfg_.event_capacity) {
    events_.pop_front();
    ++dropped_events_;
  }
  events_.push_back(ev);
}

void flight_recorder::record_window(const series_window& w) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (windows_.size() == cfg_.window_capacity) {
    windows_.pop_front();
    ++dropped_windows_;
  }
  windows_.push_back(w);
}

std::string flight_recorder::trigger(severity sev,
                                     std::string_view component,
                                     std::string_view reason,
                                     std::vector<event_field> fields) {
  // Surface the trigger on the global event stream too, so a --trace
  // file interleaves it with the engine's own events.
  if (events_enabled())
    emit(sev, component, reason, fields);

  event trig;
  trig.sev = sev;
  trig.component = std::string(component);
  trig.name = std::string(reason);
  trig.fields = std::move(fields);

  std::string doc;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++triggers_;
    doc.reserve(4096);
    doc += "{\"schema\":\"wsan-flight-recorder/1\",\"trigger\":";
    doc += to_jsonl(trig);
    doc += ",\"trigger_count\":";
    doc += std::to_string(triggers_);
    doc += ",\"dropped_events\":";
    doc += std::to_string(dropped_events_);
    doc += ",\"dropped_windows\":";
    doc += std::to_string(dropped_windows_);
    doc += ",\"windows\":[";
    bool first = true;
    for (const auto& w : windows_) {
      if (!first) doc.push_back(',');
      first = false;
      doc += window_to_jsonl(w);
    }
    doc += "],\"events\":[";
    first = true;
    for (const auto& ev : events_) {
      if (!first) doc.push_back(',');
      first = false;
      doc += to_jsonl(ev);
    }
    doc += "]}";
  }

  if (!cfg_.dump_path.empty()) {
    std::ofstream out(cfg_.dump_path);
    WSAN_REQUIRE(out.is_open(),
                 "cannot open flight-recorder dump: " + cfg_.dump_path);
    out << doc << '\n';
  }
  return doc;
}

std::uint64_t flight_recorder::triggers() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return triggers_;
}

std::uint64_t flight_recorder::dropped_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_events_;
}

std::vector<event> flight_recorder::recent_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {events_.begin(), events_.end()};
}

std::vector<series_window> flight_recorder::recent_windows() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {windows_.begin(), windows_.end()};
}

}  // namespace wsan::obs
