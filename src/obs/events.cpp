#include "obs/events.h"

#include <atomic>
#include <utility>

#include "common/error.h"

namespace wsan::obs {

std::string_view to_string(severity sev) {
  switch (sev) {
    case severity::debug:
      return "debug";
    case severity::info:
      return "info";
    case severity::warning:
      return "warning";
    case severity::error:
      return "error";
  }
  return "info";
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xf]);
          out.push_back(hex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_value(std::string& out, const field_value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    // Trace lines are for humans and scripts, not round-tripping;
    // to_string's fixed six decimals keep them readable.
    out += std::to_string(*d);
  } else {
    append_escaped(out, std::get<std::string>(v));
  }
}

std::shared_ptr<event_sink>& sink_slot() {
  static std::shared_ptr<event_sink>* slot =
      new std::shared_ptr<event_sink>();  // never destroyed
  return *slot;
}

std::mutex& sink_mutex() {
  static std::mutex* mu = new std::mutex();  // never destroyed
  return *mu;
}

std::atomic<bool> g_has_sink{false};
std::atomic<std::uint64_t> g_next_seq{1};

}  // namespace

std::string to_jsonl(const event& ev) {
  std::string line;
  line.reserve(96);
  line += "{\"seq\":";
  line += std::to_string(ev.seq);
  line += ",\"severity\":";
  append_escaped(line, to_string(ev.sev));
  line += ",\"component\":";
  append_escaped(line, ev.component);
  line += ",\"event\":";
  append_escaped(line, ev.name);
  line += ",\"fields\":{";
  bool first = true;
  for (const auto& f : ev.fields) {
    if (!first) line.push_back(',');
    first = false;
    append_escaped(line, f.key);
    line.push_back(':');
    append_value(line, f.value);
  }
  line += "}}";
  return line;
}

jsonl_sink::jsonl_sink(const std::string& path) : file_(path) {
  WSAN_REQUIRE(file_.is_open(), "cannot open trace file: " + path);
  os_ = &file_;
}

jsonl_sink::~jsonl_sink() {
  std::uint64_t errors = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    os_->flush();
    if (!os_->good() && write_errors_ == 0) write_errors_ = 1;
    errors = write_errors_;
  }
  if (errors == 0) return;
  // Surface the loss on whatever telemetry still works: a registry
  // counter, and (if this sink was not the global one) a final event.
  add_counter("obs.trace.write_errors", errors);
  if (events_enabled())
    emit(severity::error, "obs", "trace_write_errors",
         {{"dropped_lines", static_cast<std::int64_t>(errors)}});
}

void jsonl_sink::consume(const event& ev) {
  if (!accepts(ev)) return;
  const std::string line = to_jsonl(ev);
  const std::lock_guard<std::mutex> lock(mu_);
  // clear() lets a stream that failed transiently (e.g. ENOSPC) try
  // again for the next line instead of silently eating the rest.
  if (!os_->good()) os_->clear();
  *os_ << line << '\n';
  os_->flush();
  if (!os_->good()) ++write_errors_;
}

ring_sink::ring_sink(std::size_t capacity) : capacity_(capacity) {
  WSAN_REQUIRE(capacity > 0, "ring_sink capacity must be positive");
}

void ring_sink::consume(const event& ev) {
  if (!accepts(ev)) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (buffer_.size() == capacity_) {
    buffer_.pop_front();
    ++dropped_;
  }
  buffer_.push_back(ev);
}

std::vector<event> ring_sink::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {buffer_.begin(), buffer_.end()};
}

std::uint64_t ring_sink::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t jsonl_sink::write_errors() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return write_errors_;
}

void set_event_sink(std::shared_ptr<event_sink> sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  g_has_sink.store(sink != nullptr, std::memory_order_relaxed);
  sink_slot() = std::move(sink);
}

#if WSAN_OBS_ENABLED

bool events_enabled() {
  return enabled() && g_has_sink.load(std::memory_order_relaxed);
}

void emit(severity sev, std::string_view component, std::string_view name,
          std::vector<event_field> fields) {
  if (!events_enabled()) return;
  event ev;
  ev.sev = sev;
  ev.component = std::string(component);
  ev.name = std::string(name);
  ev.fields = std::move(fields);
  ev.seq = g_next_seq.fetch_add(1, std::memory_order_relaxed);
  // Copy the shared_ptr under the lock, deliver outside it, so a slow
  // sink cannot block sink swaps and re-entrant set_event_sink from a
  // consume() implementation cannot deadlock.
  std::shared_ptr<event_sink> sink;
  {
    const std::lock_guard<std::mutex> lock(sink_mutex());
    sink = sink_slot();
  }
  if (sink) sink->consume(ev);
}

#endif  // WSAN_OBS_ENABLED

}  // namespace wsan::obs
