// Observability metrics registry (DESIGN.md §9).
//
// Named counters, gauges, and fixed-bucket histograms with a hot path
// that is lock-free and contention-free: every recording thread owns a
// thread-local shard of atomic slots, increments go to the owning
// thread's shard with relaxed atomics, and take_snapshot() merges the
// shards (plus the totals of already-exited threads) under the registry
// mutex. Because every slot is merged by integer addition — a
// commutative, associative operator — the snapshot is independent of
// which worker recorded what, so `exp::trial_runner` workloads produce
// bit-identical metrics at any --jobs value.
//
// Registration (interning a name into slot indices) is the cold path
// and takes a mutex; the returned handles are cheap values meant to be
// cached in function-local statics next to the hot code:
//
//   static const obs::counter c = obs::register_counter("core.x");
//   c.add();
//
// Recording is dropped unless obs::set_enabled(true) was called (one
// relaxed atomic load per record). When the library is compiled with
// WSAN_OBS=OFF (-DWSAN_OBS_ENABLED=0) every recording call compiles to
// an empty inline body; registration and snapshots still exist so that
// cold tooling code builds unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#ifndef WSAN_OBS_ENABLED
#define WSAN_OBS_ENABLED 1
#endif

namespace wsan::obs {

/// True when the library was built with observability support.
inline constexpr bool k_compiled_in = WSAN_OBS_ENABLED != 0;

/// Slot index into the per-thread shard arena.
using slot_t = std::uint32_t;
inline constexpr slot_t k_invalid_slot = 0xffffffffu;

namespace detail {
#if WSAN_OBS_ENABLED
/// Relaxed atomic add on the current thread's shard (created lazily).
void shard_add(slot_t slot, std::uint64_t delta);
bool enabled_impl();
/// Interns a span name; returns the first of its two slots (count,
/// total_ns). Used by trace.h.
slot_t register_span_slots(std::string_view name);
#endif
}  // namespace detail

/// Global runtime switch. Off by default: with no consumer attached the
/// instrumented hot paths pay one relaxed load and branch per record.
#if WSAN_OBS_ENABLED
inline bool enabled() { return detail::enabled_impl(); }
void set_enabled(bool on);
#else
inline constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#endif

/// A monotonically increasing named count.
class counter {
 public:
  counter() = default;

  void add(std::uint64_t delta = 1) const {
#if WSAN_OBS_ENABLED
    if (!enabled() || slot_ == k_invalid_slot) return;
    detail::shard_add(slot_, delta);
#else
    (void)delta;
#endif
  }

 private:
  friend counter register_counter(std::string_view name);
  slot_t slot_ = k_invalid_slot;
};

/// A fixed-bucket histogram: a value lands in the first bucket whose
/// upper bound is >= value; values above every bound land in the
/// overflow bucket. Bucket counts are plain counters, so histograms
/// merge as order-independently as everything else.
class histogram {
 public:
  histogram() = default;

  void observe(double value) const {
#if WSAN_OBS_ENABLED
    if (!enabled() || first_slot_ == k_invalid_slot) return;
    slot_t bucket = num_bounds_;  // overflow
    for (slot_t b = 0; b < num_bounds_; ++b) {
      if (value <= bounds_[b]) {
        bucket = b;
        break;
      }
    }
    detail::shard_add(first_slot_ + bucket, 1);
#else
    (void)value;
#endif
  }

 private:
  friend histogram register_histogram(std::string_view name,
                                      std::vector<double> upper_bounds);
  slot_t first_slot_ = k_invalid_slot;
  slot_t num_bounds_ = 0;
  const double* bounds_ = nullptr;  // interned, immutable
};

/// Strictly increasing exponential histogram bounds: start,
/// start*factor, ..., start*factor^(count-1). The natural bucket
/// layout for latency-style metrics whose tail spans decades. Requires
/// start > 0, factor > 1, count >= 1.
inline std::vector<double> exponential_bounds(double start, double factor,
                                              int count) {
  std::vector<double> bounds;
  bounds.reserve(count > 0 ? static_cast<std::size_t>(count) : 0);
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

/// Interns a counter. Registering the same name twice returns the same
/// handle; re-registering a name as a different metric kind throws.
#if WSAN_OBS_ENABLED
counter register_counter(std::string_view name);
histogram register_histogram(std::string_view name,
                             std::vector<double> upper_bounds);
/// Cold-path convenience: intern + add in one call (takes the registry
/// mutex — use for end-of-run flushes, not per-record hot paths).
void add_counter(std::string_view name, std::uint64_t delta = 1);
/// Gauges are last-written named values for cold-path facts (sizes,
/// configuration); setting one takes the registry mutex.
void set_gauge(std::string_view name, double value);
#else
inline counter register_counter(std::string_view) { return {}; }
inline histogram register_histogram(std::string_view,
                                    std::vector<double>) {
  return {};
}
inline void add_counter(std::string_view, std::uint64_t = 1) {}
inline void set_gauge(std::string_view, double) {}
#endif

// ------------------------------------------------------- snapshots --

struct histogram_snapshot {
  std::vector<double> upper_bounds;
  /// Bucket counts; one longer than upper_bounds (overflow last).
  std::vector<std::uint64_t> counts;

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto c : counts) sum += c;
    return sum;
  }
};

/// Aggregated timings of one span name (see trace.h).
struct span_snapshot {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// A merged view of every registered metric. Counter, histogram, and
/// span-count values are deterministic for deterministic workloads;
/// span total_ns values are wall-clock measurements.
struct snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, histogram_snapshot> histograms;
  std::map<std::string, span_snapshot> spans;
};

#if WSAN_OBS_ENABLED
/// Merges all live thread shards with the retired totals. Values still
/// being recorded concurrently may or may not be included; call after
/// workers joined for a complete, deterministic view.
snapshot take_snapshot();
/// Zeroes every recorded value (registered names and handles stay
/// valid) and clears the gauges. For tests and per-run sessions.
void reset_metrics();
#else
inline snapshot take_snapshot() { return {}; }
inline void reset_metrics() {}
#endif

}  // namespace wsan::obs
