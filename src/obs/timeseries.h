// Temporal observability: windowed metric series (DESIGN.md §15).
//
// A `series` is an ordered list of windows keyed by a deterministic
// index — an epoch or operation count, never wall-clock — so two runs
// of the same workload produce bit-identical series at any --jobs
// value. Each window holds named scalar values plus optional
// fixed-bucket histograms (admission latency, PDR, ...) that merge
// exactly like the registry histograms in metrics.h.
//
// `series_recorder` is the builder: engines call begin_window(index),
// set()/add()/observe() deterministic per-window facts, and
// end_window(). An opt-in mode additionally folds per-window deltas of
// the global metrics registry into each window (prefix "delta."); that
// is only deterministic when exactly one engine is running, so it is
// off by default and unused by the parallel bench harness.
//
// Exporters: write_series_jsonl() emits a self-describing JSONL file
// (header line `{"schema":"wsan-series/1",...}` then one line per
// window) and write_series_openmetrics() emits OpenMetrics-style text
// exposition with a `window` label per sample. Serialisation is
// hand-rolled like events.cpp — obs stays dependency-free; parsing
// lives in exp::obs_io on top of exp::json.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace wsan::obs {

/// One window of a series: the metric values at (or over) the window
/// with deterministic index `index`.
struct series_window {
  std::int64_t index = 0;
  std::map<std::string, double> values;
  std::map<std::string, histogram_snapshot> histograms;
};

/// An ordered run of windows. `index_unit` documents what the index
/// counts ("epoch", "op", ...).
struct series {
  std::string name;
  std::string index_unit = "epoch";
  std::vector<series_window> windows;
};

/// Incremental series builder; not thread-safe (one engine, one
/// recorder — parallel trial workers aggregate first, then record).
class series_recorder {
 public:
  struct options {
    std::string name = "series";
    std::string index_unit = "epoch";
    /// Fold per-window counter deltas of the global metrics registry
    /// into each window under a "delta." prefix. Deterministic only
    /// when a single engine runs at a time; off by default.
    bool capture_registry_deltas = false;
  };

  series_recorder() : series_recorder(options{}) {}
  explicit series_recorder(options opts);

  /// Opens a window; indices must be strictly increasing.
  void begin_window(std::int64_t index);
  /// Sets (overwrites) a scalar value in the open window.
  void set(std::string_view name, double value);
  /// Accumulates into a scalar value in the open window.
  void add(std::string_view name, double delta);
  /// Observes one value into a per-window histogram with the given
  /// inclusive upper bounds (overflow bucket appended, as in
  /// metrics.h). Bounds must be identical across calls for one name.
  void observe(std::string_view name, const std::vector<double>& bounds,
               double value);
  /// Merges a whole histogram snapshot into the open window.
  void merge_histogram(std::string_view name, const histogram_snapshot& h);
  /// Closes the window and returns it (valid until the next begin).
  const series_window& end_window();

  bool window_open() const { return open_; }
  /// The finished series; requires no open window.
  const series& result() const;

 private:
  options opts_;
  series series_;
  series_window current_;
  bool open_ = false;
  std::map<std::string, std::uint64_t> last_counters_;
};

/// Serialises one window as a single JSON line (no trailing newline):
///   {"index":4,"values":{"pdr":0.97},"histograms":{...}}
std::string window_to_jsonl(const series_window& w);

/// JSONL file: header line with schema/name/index_unit, then one line
/// per window.
void write_series_jsonl(const series& s, std::ostream& os);

/// OpenMetrics-style text exposition: every scalar as a gauge sample
/// with a `window` label, histograms as `_bucket`/`_count` samples,
/// terminated by `# EOF`. Names are sanitised to [a-z0-9_] and
/// prefixed "wsan_".
void write_series_openmetrics(const series& s, std::ostream& os);

}  // namespace wsan::obs
