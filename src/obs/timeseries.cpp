#include "obs/timeseries.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/error.h"

namespace wsan::obs {

namespace {

// Shortest round-trip double formatting, mirroring exp::json::write so
// a series survives a JSONL round-trip bit-exactly.
void append_double(std::string& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    out += "null";
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  WSAN_REQUIRE(ec == std::errc{}, "double format failed");
  out.append(buf, ptr);
}

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xf]);
          out.push_back(hex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_histogram(std::string& out, const histogram_snapshot& h) {
  out += "{\"upper_bounds\":[";
  for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
    if (i) out.push_back(',');
    append_double(out, h.upper_bounds[i]);
  }
  out += "],\"counts\":[";
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (i) out.push_back(',');
    out += std::to_string(h.counts[i]);
  }
  out += "]}";
}

/// OpenMetrics metric names: [a-z0-9_] with a wsan_ prefix.
std::string sanitize_metric_name(std::string_view raw) {
  std::string out = "wsan_";
  for (const char c : raw) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
      out.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      out.push_back(static_cast<char>(c - 'A' + 'a'));
    } else {
      out.push_back('_');
    }
  }
  return out;
}

void append_om_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  WSAN_REQUIRE(ec == std::errc{}, "double format failed");
  out.append(buf, ptr);
}

}  // namespace

series_recorder::series_recorder(options opts) : opts_(std::move(opts)) {
  series_.name = opts_.name;
  series_.index_unit = opts_.index_unit;
}

void series_recorder::begin_window(std::int64_t index) {
  WSAN_REQUIRE(!open_, "series_recorder: window already open");
  WSAN_REQUIRE(
      series_.windows.empty() || index > series_.windows.back().index,
      "series_recorder: window indices must be strictly increasing");
  current_ = series_window{};
  current_.index = index;
  open_ = true;
}

void series_recorder::set(std::string_view name, double value) {
  WSAN_REQUIRE(open_, "series_recorder: no open window");
  current_.values[std::string(name)] = value;
}

void series_recorder::add(std::string_view name, double delta) {
  WSAN_REQUIRE(open_, "series_recorder: no open window");
  current_.values[std::string(name)] += delta;
}

void series_recorder::observe(std::string_view name,
                              const std::vector<double>& bounds,
                              double value) {
  WSAN_REQUIRE(open_, "series_recorder: no open window");
  auto& h = current_.histograms[std::string(name)];
  if (h.counts.empty()) {
    for (std::size_t i = 1; i < bounds.size(); ++i)
      WSAN_REQUIRE(bounds[i] > bounds[i - 1],
                   "series_recorder: bounds must be strictly increasing");
    h.upper_bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
  } else {
    WSAN_REQUIRE(h.upper_bounds == bounds,
                 "series_recorder: histogram bounds changed mid-window");
  }
  std::size_t bucket = h.upper_bounds.size();  // overflow
  for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
    if (value <= h.upper_bounds[b]) {
      bucket = b;
      break;
    }
  }
  ++h.counts[bucket];
}

void series_recorder::merge_histogram(std::string_view name,
                                      const histogram_snapshot& src) {
  WSAN_REQUIRE(open_, "series_recorder: no open window");
  auto& h = current_.histograms[std::string(name)];
  if (h.counts.empty()) {
    h = src;
    return;
  }
  WSAN_REQUIRE(h.upper_bounds == src.upper_bounds &&
                   h.counts.size() == src.counts.size(),
               "series_recorder: histogram merge with different bounds");
  for (std::size_t i = 0; i < h.counts.size(); ++i)
    h.counts[i] += src.counts[i];
}

const series_window& series_recorder::end_window() {
  WSAN_REQUIRE(open_, "series_recorder: no open window");
  if (opts_.capture_registry_deltas) {
    const snapshot snap = take_snapshot();
    for (const auto& [name, total] : snap.counters) {
      const std::uint64_t prev = last_counters_[name];
      if (total != prev)
        current_.values["delta." + name] =
            static_cast<double>(total - prev);
      last_counters_[name] = total;
    }
  }
  open_ = false;
  series_.windows.push_back(std::move(current_));
  return series_.windows.back();
}

const series& series_recorder::result() const {
  WSAN_REQUIRE(!open_, "series_recorder: close the window first");
  return series_;
}

std::string window_to_jsonl(const series_window& w) {
  std::string line;
  line.reserve(128);
  line += "{\"index\":";
  line += std::to_string(w.index);
  line += ",\"values\":{";
  bool first = true;
  for (const auto& [name, value] : w.values) {
    if (!first) line.push_back(',');
    first = false;
    append_escaped(line, name);
    line.push_back(':');
    append_double(line, value);
  }
  line += "}";
  if (!w.histograms.empty()) {
    line += ",\"histograms\":{";
    first = true;
    for (const auto& [name, h] : w.histograms) {
      if (!first) line.push_back(',');
      first = false;
      append_escaped(line, name);
      line.push_back(':');
      append_histogram(line, h);
    }
    line += "}";
  }
  line += "}";
  return line;
}

void write_series_jsonl(const series& s, std::ostream& os) {
  std::string header = "{\"schema\":\"wsan-series/1\",\"name\":";
  append_escaped(header, s.name);
  header += ",\"index_unit\":";
  append_escaped(header, s.index_unit);
  header += ",\"windows\":";
  header += std::to_string(s.windows.size());
  header += "}";
  os << header << '\n';
  for (const auto& w : s.windows) os << window_to_jsonl(w) << '\n';
}

void write_series_openmetrics(const series& s, std::ostream& os) {
  // Collect metric names first so each gets exactly one TYPE line.
  std::map<std::string, bool> scalar_seen;
  std::map<std::string, bool> histo_seen;
  for (const auto& w : s.windows) {
    for (const auto& [name, _] : w.values) scalar_seen[name] = true;
    for (const auto& [name, _] : w.histograms) histo_seen[name] = true;
  }
  std::string out;
  for (const auto& [name, _] : scalar_seen) {
    const std::string om = sanitize_metric_name(name);
    out += "# TYPE " + om + " gauge\n";
    for (const auto& w : s.windows) {
      const auto it = w.values.find(name);
      if (it == w.values.end()) continue;
      out += om + "{window=\"" + std::to_string(w.index) + "\"} ";
      append_om_double(out, it->second);
      out.push_back('\n');
    }
  }
  for (const auto& [name, _] : histo_seen) {
    const std::string om = sanitize_metric_name(name);
    out += "# TYPE " + om + " histogram\n";
    for (const auto& w : s.windows) {
      const auto it = w.histograms.find(name);
      if (it == w.histograms.end()) continue;
      const auto& h = it->second;
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        cumulative += h.counts[b];
        out += om + "_bucket{le=\"";
        if (b < h.upper_bounds.size())
          append_om_double(out, h.upper_bounds[b]);
        else
          out += "+Inf";
        out += "\",window=\"" + std::to_string(w.index) + "\"} ";
        out += std::to_string(cumulative);
        out.push_back('\n');
      }
      out += om + "_count{window=\"" + std::to_string(w.index) + "\"} ";
      out += std::to_string(h.total());
      out.push_back('\n');
    }
  }
  out += "# EOF\n";
  os << out;
}

}  // namespace wsan::obs
