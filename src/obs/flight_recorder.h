// Anomaly flight recorder (DESIGN.md §15).
//
// A bounded black box: it retains the most recent events (fed to it as
// an event_sink, typically behind a tee_sink so a --trace file keeps
// receiving everything) and the most recent series windows (fed by the
// engine that owns it). When an anomaly fires — an SLO rule trips at
// error severity, or recover() exhausts its retries — trigger() writes
// a self-contained JSON post-mortem (`wsan-flight-recorder/1`): the
// triggering event, the surviving window of engine events, the last N
// epoch windows of metric deltas, and drop counters that tell the
// reader exactly how much history was lost. Repeated triggers rewrite
// the dump, so the artifact always describes the most recent anomaly.
//
// Everything here is cold-path tooling: it compiles and works under
// WSAN_OBS=OFF (the global emit() path is dead there, but engines feed
// the recorder directly).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/events.h"
#include "obs/timeseries.h"

namespace wsan::obs {

/// Fans one event stream out to several sinks (e.g. a jsonl trace file
/// plus a flight recorder). Null entries are skipped.
class tee_sink final : public event_sink {
 public:
  explicit tee_sink(std::vector<std::shared_ptr<event_sink>> sinks);

  void consume(const event& ev) override;

 private:
  std::vector<std::shared_ptr<event_sink>> sinks_;
};

class flight_recorder final : public event_sink {
 public:
  struct config {
    std::size_t event_capacity = 256;  ///< ring of recent events
    std::size_t window_capacity = 16;  ///< last N series windows kept
    /// Dump file written on trigger; empty disables file output
    /// (trigger() still returns the document text).
    std::string dump_path;
  };

  flight_recorder() : flight_recorder(config{}) {}
  explicit flight_recorder(config cfg);

  /// event_sink: retain the event in the bounded ring.
  void consume(const event& ev) override;

  /// Retains one closed series window in the bounded window ring.
  void record_window(const series_window& w);

  /// Fires the black box: composes the post-mortem document from the
  /// trigger description plus the retained history, writes it to
  /// config.dump_path (when set), and returns the JSON text. Also
  /// emits the trigger as a global event so trace files carry it.
  std::string trigger(severity sev, std::string_view component,
                      std::string_view reason,
                      std::vector<event_field> fields = {});

  std::uint64_t triggers() const;
  std::uint64_t dropped_events() const;
  std::vector<event> recent_events() const;
  std::vector<series_window> recent_windows() const;
  const config& recorder_config() const { return cfg_; }

 private:
  config cfg_;
  mutable std::mutex mu_;
  std::deque<event> events_;
  std::deque<series_window> windows_;
  std::uint64_t dropped_events_ = 0;
  std::uint64_t dropped_windows_ = 0;
  std::uint64_t triggers_ = 0;
};

}  // namespace wsan::obs
