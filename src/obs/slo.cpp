#include "obs/slo.h"

namespace wsan::obs {

std::string_view to_string(slo_kind kind) {
  return kind == slo_kind::upper_bound ? "max" : "min";
}

int health_verdict::errors() const {
  int n = 0;
  for (const auto& v : violations)
    if (v.sev == severity::error) ++n;
  return n;
}

int health_verdict::warnings() const {
  int n = 0;
  for (const auto& v : violations)
    if (v.sev == severity::warning) ++n;
  return n;
}

slo_policy default_scenario_policy() {
  slo_policy p;
  // PDR floor: a healthy epoch delivers the large majority of its
  // packets even under churn; sustained jamming of a static schedule
  // drives PDR well below this.
  p.rules.push_back({"pdr", slo_kind::lower_bound, 0.85, severity::error});
  // Retry exhaustion is always an error: the manager gave up and kept
  // the previous epoch's state.
  p.rules.push_back(
      {"recovery_failed", slo_kind::upper_bound, 0.0, severity::error});
  // Back-pressure is expected near capacity; flag only heavy rejection.
  p.rules.push_back({"rejection_rate", slo_kind::upper_bound, 0.75,
                     severity::warning});
  // A predicting jammer hitting most of its predictions means the
  // schedule is temporally predictable (SlotSwapper off or defeated).
  p.rules.push_back({"jam_hit_rate", slo_kind::upper_bound, 0.5,
                     severity::warning});
  return p;
}

slo_policy default_fleet_policy(double admit_p99_us) {
  slo_policy p;
  p.rules.push_back({"admit_p99_us", slo_kind::upper_bound, admit_p99_us,
                     severity::warning});
  p.rules.push_back({"rejection_rate", slo_kind::upper_bound, 0.75,
                     severity::warning});
  p.rules.push_back(
      {"recovery_failed", slo_kind::upper_bound, 0.0, severity::error});
  return p;
}

int evaluate_window(const series_window& w, const slo_policy& policy,
                    std::vector<slo_violation>& out) {
  int appended = 0;
  for (const auto& rule : policy.rules) {
    const auto it = w.values.find(rule.metric);
    if (it == w.values.end()) continue;
    const double value = it->second;
    const bool violated = rule.kind == slo_kind::upper_bound
                              ? value > rule.bound
                              : value < rule.bound;
    if (!violated) continue;
    out.push_back({w.index, rule.metric, value, rule.bound, rule.kind,
                   rule.sev});
    ++appended;
    if (events_enabled())
      emit(rule.sev, "slo", "slo_violation",
           {{"window", w.index},
            {"metric", rule.metric},
            {"value", value},
            {"bound", rule.bound},
            {"kind", to_string(rule.kind)}});
  }
  return appended;
}

health_verdict evaluate_slo(const series& s, const slo_policy& policy) {
  health_verdict verdict;
  for (const auto& w : s.windows) {
    ++verdict.windows_evaluated;
    evaluate_window(w, policy, verdict.violations);
  }
  verdict.healthy = verdict.errors() == 0;
  return verdict;
}

}  // namespace wsan::obs
