#include "obs/trace.h"

#if WSAN_OBS_ENABLED

namespace wsan::obs {

namespace {
thread_local int g_span_depth = 0;
}  // namespace

span_stat register_span(std::string_view name) {
  span_stat stat;
  stat.first_slot_ = obs::detail::register_span_slots(name);
  return stat;
}

int span_depth() { return g_span_depth; }

namespace detail {

void enter_span() { ++g_span_depth; }
void leave_span() { --g_span_depth; }

}  // namespace detail

}  // namespace wsan::obs

#endif  // WSAN_OBS_ENABLED
