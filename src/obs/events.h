// Structured event log (DESIGN.md §9).
//
// Components emit typed events — schedule decisions, fault-plan
// executions, watchdog verdicts, shedding choices — to one globally
// installed sink. Every event carries a severity, the emitting
// component, an event name, typed key/value fields, and a process-wide
// monotonic sequence number. Two sinks ship with the library:
//
//   * jsonl_sink — one JSON object per line (the `--trace FILE`
//     format), parseable by exp::json; and
//   * ring_sink — a bounded in-memory buffer that keeps the most
//     recent events and counts what it dropped, for tests and
//     post-mortem capture.
//
// Emission is a no-op unless observability is enabled AND a sink is
// installed; call sites that build field lists should guard with
// events_enabled() so the disabled path never materialises strings.
// With WSAN_OBS=OFF, events_enabled() is constexpr false and emit()
// compiles away, while the sink classes remain available to cold
// tooling code.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "obs/metrics.h"

namespace wsan::obs {

enum class severity { debug, info, warning, error };

std::string_view to_string(severity sev);

/// A typed event field value: integer, floating point, or string.
using field_value = std::variant<std::int64_t, double, std::string>;

struct event_field {
  std::string key;
  field_value value;

  template <typename T>
    requires std::integral<T>
  event_field(std::string_view k, T v)
      : key(k), value(static_cast<std::int64_t>(v)) {}
  event_field(std::string_view k, double v) : key(k), value(v) {}
  event_field(std::string_view k, std::string_view v)
      : key(k), value(std::string(v)) {}
  event_field(std::string_view k, const char* v)
      : key(k), value(std::string(v)) {}
  event_field(std::string_view k, bool v)
      : key(k), value(static_cast<std::int64_t>(v ? 1 : 0)) {}
};

struct event {
  severity sev = severity::info;
  std::string component;
  std::string name;
  std::vector<event_field> fields;
  /// Process-wide monotonic sequence number, assigned at emission.
  std::uint64_t seq = 0;
};

/// Serialises one event as a single JSON line:
///   {"seq":1,"severity":"info","component":"core",
///    "event":"flow_admitted","fields":{"flow":3,"rho":2}}
std::string to_jsonl(const event& ev);

class event_sink {
 public:
  virtual ~event_sink() = default;
  /// May be called from multiple threads; implementations serialise.
  virtual void consume(const event& ev) = 0;

  /// Events below this severity are ignored by the shipped sinks —
  /// checked first in consume(), before any buffering, so filtered
  /// events never count as ring drops or write attempts.
  void set_min_severity(severity sev) {
    min_sev_.store(sev, std::memory_order_relaxed);
  }
  severity min_severity() const {
    return min_sev_.load(std::memory_order_relaxed);
  }

 protected:
  bool accepts(const event& ev) const { return ev.sev >= min_severity(); }

 private:
  std::atomic<severity> min_sev_{severity::debug};
};

/// Appends one JSON line per event to a stream or file. Every line is
/// flushed so a post-mortem reader sees the trace up to the crash;
/// failed writes are counted (write_errors()) and surfaced once on
/// destruction as a final error event plus an
/// "obs.trace.write_errors" counter, instead of failing silently.
class jsonl_sink final : public event_sink {
 public:
  /// Non-owning: the stream must outlive the sink.
  explicit jsonl_sink(std::ostream& os) : os_(&os) {}
  /// Owning: opens (truncates) `path`; throws on failure.
  explicit jsonl_sink(const std::string& path);
  ~jsonl_sink() override;

  void consume(const event& ev) override;

  /// Events whose line could not be written (stream went bad).
  std::uint64_t write_errors() const;

 private:
  std::ofstream file_;
  std::ostream* os_ = nullptr;
  mutable std::mutex mu_;
  std::uint64_t write_errors_ = 0;
};

/// Keeps the most recent `capacity` events; older ones are dropped and
/// counted. seq numbers stay monotonic across drops, so a reader can
/// tell exactly which window survived.
class ring_sink final : public event_sink {
 public:
  explicit ring_sink(std::size_t capacity);

  void consume(const event& ev) override;

  /// The surviving window, oldest first.
  std::vector<event> events() const;
  std::uint64_t dropped() const;
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<event> buffer_;
  std::uint64_t dropped_ = 0;
};

/// Installs (or, with nullptr, removes) the global event sink.
void set_event_sink(std::shared_ptr<event_sink> sink);

#if WSAN_OBS_ENABLED
/// True iff emit() would deliver: observability enabled and a sink
/// installed. One relaxed load — cheap enough for hot-path guards.
bool events_enabled();
void emit(severity sev, std::string_view component, std::string_view name,
          std::vector<event_field> fields = {});
#else
inline constexpr bool events_enabled() { return false; }
inline void emit(severity, std::string_view, std::string_view,
                 std::vector<event_field> = {}) {}
#endif

}  // namespace wsan::obs
