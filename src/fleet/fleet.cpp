#include "fleet/fleet.h"

#include <chrono>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "exp/runner.h"
#include "graph/comm_graph.h"
#include "graph/reuse_graph.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "phy/channel.h"
#include "topo/testbeds.h"

namespace wsan::fleet {

network_blueprint make_blueprint(const fleet_config& config) {
  WSAN_REQUIRE(config.tenants >= 1, "fleet needs at least one tenant");
  WSAN_REQUIRE(config.ops_per_tenant >= 0,
               "ops per tenant must be non-negative");
  WSAN_REQUIRE(config.max_flows_per_tenant >= 1,
               "tenants must admit at least one flow");
  WSAN_REQUIRE(config.admit_bias >= 0.0 && config.admit_bias <= 1.0,
               "admit bias must be a probability");
  network_blueprint bp;
  if (config.testbed == "indriya") {
    bp.topology = topo::make_indriya();
  } else if (config.testbed == "wustl") {
    bp.topology = topo::make_wustl();
  } else {
    WSAN_REQUIRE(false, "unknown testbed: " + config.testbed);
  }
  bp.channels = phy::channels(config.num_channels);
  graph::comm_graph_options comm_opts;
  comm_opts.prr_threshold = config.prr_threshold;
  bp.comm =
      graph::build_communication_graph(bp.topology, bp.channels, comm_opts);
  bp.reuse = graph::build_channel_reuse_graph(bp.topology, bp.channels);
  bp.reuse_hops = graph::hop_matrix(bp.reuse);
  bp.sched_config =
      core::make_config(config.algo, config.num_channels, config.rho_t);
  return bp;
}

tenant_stats& tenant_stats::operator+=(const tenant_stats& other) {
  ops += other.ops;
  admissions += other.admissions;
  rejections += other.rejections;
  evictions += other.evictions;
  placed += other.placed;
  freed += other.freed;
  repair_fallbacks += other.repair_fallbacks;
  rescheduled_flows += other.rescheduled_flows;
  return *this;
}

void tenant::apply_op(std::uint64_t tenant_id, std::uint64_t op,
                      tenant_stats& stats, std::vector<double>* admit_ns) {
  rng gen(derive_seed(config_->seed, tenant_id, op));
  const bool can_admit =
      delta_.size() <
      static_cast<std::size_t>(config_->max_flows_per_tenant);
  const bool can_evict = !delta_.empty();
  // An op with nothing to do (empty tenant at max_flows 0 is ruled out
  // by make_blueprint) is impossible: !can_evict implies can_admit.
  const bool do_admit =
      can_admit && (!can_evict || gen.bernoulli(config_->admit_bias));
  ++stats.ops;

  if (do_admit) {
    flow::flow_set_params params = config_->flow_params;
    params.num_flows = 1;
    flow::flow f =
        flow::generate_flow_set(blueprint_->comm, params, gen)
            .flows.front();
    core::delta_scheduler::admit_outcome out;
    double ns = 0.0;
    {
      OBS_SPAN("fleet.admit");
      const auto start = std::chrono::steady_clock::now();
      out = delta_.admit_flow(std::move(f));
      ns = std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start)
               .count();
    }
    if (admit_ns != nullptr) admit_ns->push_back(ns);
    if (out.admitted) {
      ++stats.admissions;
      stats.placed += static_cast<std::int64_t>(out.placed);
      obs::add_counter("fleet.admissions");
    } else {
      ++stats.rejections;
      obs::add_counter("fleet.rejections");
    }
    if (out.full_reschedule) {
      ++stats.repair_fallbacks;
      obs::add_counter("fleet.repair_fallbacks");
    }
    if (obs::events_enabled())
      obs::emit(obs::severity::info, "fleet", "admit",
                {{"tenant", static_cast<long long>(tenant_id)},
                 {"admitted", out.admitted ? 1 : 0},
                 {"full_reschedule", out.full_reschedule ? 1 : 0}});
    return;
  }

  OBS_SPAN("fleet.evict");
  const auto victim = static_cast<flow_id>(
      gen.uniform_int(0, static_cast<std::int64_t>(delta_.size()) - 1));
  const auto out = delta_.evict_flow(victim);
  WSAN_CHECK(out.evicted, "churn picked a flow id that must exist");
  ++stats.evictions;
  stats.freed += static_cast<std::int64_t>(out.freed);
  stats.rescheduled_flows +=
      static_cast<std::int64_t>(out.rescheduled_flows);
  obs::add_counter("fleet.evictions");
  if (out.full_reschedule) {
    ++stats.repair_fallbacks;
    obs::add_counter("fleet.repair_fallbacks");
  }
  if (obs::events_enabled())
    obs::emit(obs::severity::info, "fleet", "evict",
              {{"tenant", static_cast<long long>(tenant_id)},
               {"victim", victim},
               {"full_reschedule", out.full_reschedule ? 1 : 0}});
}

std::uint64_t tenant_state_digest(std::uint64_t tenant_id,
                                  const core::delta_scheduler& delta) {
  // FNV-1a over the full final state; the per-tenant hashes are summed
  // (wrapping) by run_churn, so the fleet digest is independent of the
  // order tenants finish in.
  std::uint64_t h = 1469598103934665603ULL ^ (tenant_id * 0x9e3779b97f4a7c15ULL);
  const auto feed = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  feed(delta.schedulable() ? 1 : 0);
  feed(delta.size());
  feed(static_cast<std::uint64_t>(delta.sched().num_slots()));
  for (const auto& p : delta.sched().placements()) {
    feed(static_cast<std::uint64_t>(p.tx.flow));
    feed(static_cast<std::uint64_t>(p.tx.instance));
    feed(static_cast<std::uint64_t>(p.tx.link_index));
    feed(static_cast<std::uint64_t>(p.tx.attempt));
    feed(static_cast<std::uint64_t>(p.slot));
    feed(static_cast<std::uint64_t>(p.offset));
  }
  return h;
}

fleet_result fleet_manager::run_churn(int jobs,
                                      obs::flight_recorder* recorder) const {
  OBS_SPAN("fleet.run_churn");
  const int n = config_.tenants;
  // Every per-tenant output lands in a slot indexed by tenant id, so
  // the merge below never depends on which worker ran which tenant.
  std::vector<tenant_stats> stats(static_cast<std::size_t>(n));
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> digests(static_cast<std::size_t>(n), 0);
  std::vector<char> schedulable(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> flows(static_cast<std::size_t>(n), 0);
  exp::parallel_trials(n, jobs, [&](int worker, int t) {
    (void)worker;  // shard state is keyed by tenant, not worker
    const auto ti = static_cast<std::size_t>(t);
    tenant ten(blueprint_, config_);
    for (int op = 0; op < config_.ops_per_tenant; ++op)
      ten.apply_op(static_cast<std::uint64_t>(t),
                   static_cast<std::uint64_t>(op), stats[ti],
                   &latencies[ti]);
    digests[ti] = tenant_state_digest(static_cast<std::uint64_t>(t),
                                      ten.delta());
    schedulable[ti] = ten.delta().schedulable() ? 1 : 0;
    flows[ti] = static_cast<std::int64_t>(ten.delta().size());
  });

  fleet_result result;
  result.tenants = n;
  for (std::size_t t = 0; t < static_cast<std::size_t>(n); ++t) {
    result.totals += stats[t];
    result.state_digest += digests[t];
    result.schedulable_tenants += schedulable[t];
    result.final_flows += flows[t];
    result.admit_latency_ns.insert(result.admit_latency_ns.end(),
                                   latencies[t].begin(),
                                   latencies[t].end());
  }

  // Flight recorder: tenant-indexed windows, fed after the fold so the
  // sequence is deterministic at any jobs value. A tenant that ends
  // its churn stream unschedulable is an anomaly worth a post-mortem.
  if (recorder != nullptr) {
    for (std::size_t t = 0; t < static_cast<std::size_t>(n); ++t) {
      obs::series_window w;
      w.index = static_cast<std::int64_t>(t);
      w.values["ops"] = static_cast<double>(stats[t].ops);
      w.values["admissions"] = static_cast<double>(stats[t].admissions);
      w.values["rejections"] = static_cast<double>(stats[t].rejections);
      w.values["evictions"] = static_cast<double>(stats[t].evictions);
      w.values["repair_fallbacks"] =
          static_cast<double>(stats[t].repair_fallbacks);
      w.values["schedulable"] = schedulable[t] ? 1.0 : 0.0;
      w.values["flows"] = static_cast<double>(flows[t]);
      recorder->record_window(w);
      if (!schedulable[t])
        recorder->trigger(
            obs::severity::error, "fleet", "tenant_unschedulable",
            {{"tenant", static_cast<std::int64_t>(t)},
             {"flows", flows[t]},
             {"ops", stats[t].ops}});
    }
  }
  return result;
}

tenant fleet_manager::replay_tenant(std::uint64_t tenant_id,
                                    tenant_stats* stats) const {
  WSAN_REQUIRE(tenant_id < static_cast<std::uint64_t>(config_.tenants),
               "tenant id out of range");
  tenant ten(blueprint_, config_);
  tenant_stats local;
  for (int op = 0; op < config_.ops_per_tenant; ++op)
    ten.apply_op(tenant_id, static_cast<std::uint64_t>(op), local,
                 nullptr);
  if (stats != nullptr) *stats = local;
  return ten;
}

}  // namespace wsan::fleet
