// Fleet service: many independent WSANs under one manager process.
//
// A production deployment of the paper's network manager does not run
// one network — it runs a fleet of them (one per plant cell / tenant),
// each with its own flow set and schedule but sharing the same physical
// testbed blueprint and scheduler configuration. The fleet layer shards
// that workload:
//
//   * shared-nothing tenants — each tenant owns its own
//     core::delta_scheduler arena (schedule grid, occupancy index, flow
//     set); no cross-tenant state exists, so tenants are the unit of
//     parallelism;
//   * a work-stealing pool (exp::parallel_trials) fans tenants out over
//     worker threads, and every per-tenant result lands in a slot
//     indexed by tenant id — not by worker — so the run is bit-identical
//     at any --jobs value;
//   * each tenant's churn stream (admit/evict decisions, flow draws) is
//     a pure function of (fleet seed, tenant id, op index) via
//     derive_seed, the same counter-seeded determinism model as the
//     experiment harness — any single tenant can be replayed in
//     isolation (replay_tenant) and reproduces exactly its slice of the
//     full run.
//
// Admissions and evictions go through the incremental delta-scheduling
// API (core/delta.h) rather than full schedule_flows reruns; the
// fleet.repair_fallbacks counter tracks how often a full rerun was
// still needed (hyperperiod changes). Tenant flow priorities are
// arrival-order (dense ids), matching the delta scheduler's model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/delta.h"
#include "flow/flow_generator.h"
#include "graph/hop_matrix.h"
#include "obs/flight_recorder.h"
#include "topo/topology.h"

namespace wsan::fleet {

struct fleet_config {
  std::string testbed = "indriya";  ///< "indriya" | "wustl"
  int num_channels = 8;
  double prr_threshold = 0.9;
  core::algorithm algo = core::algorithm::rc;
  int rho_t = 2;
  int tenants = 1024;
  int ops_per_tenant = 32;
  /// Admission attempts stop growing a tenant past this many flows.
  int max_flows_per_tenant = 12;
  /// P(admit) for an op when both admitting and evicting are possible.
  double admit_bias = 0.7;
  std::uint64_t seed = 1;
  /// Per-admission flow draw template; num_flows is forced to 1.
  flow::flow_set_params flow_params;
};

/// Immutable state shared by every tenant of a fleet: the physical
/// deployment, its derived graphs, and the scheduler configuration.
/// Built once, read concurrently by all workers.
struct network_blueprint {
  topo::topology topology;
  std::vector<channel_t> channels;
  graph::graph comm;
  graph::graph reuse;
  graph::hop_matrix reuse_hops;
  core::scheduler_config sched_config;
};

network_blueprint make_blueprint(const fleet_config& config);

/// Per-tenant (and, merged, per-fleet) deterministic operation counts.
struct tenant_stats {
  std::int64_t ops = 0;
  std::int64_t admissions = 0;  ///< successful admits
  std::int64_t rejections = 0;  ///< admits the oracle verdict refused
  std::int64_t evictions = 0;
  std::int64_t placed = 0;      ///< transmissions placed by admissions
  std::int64_t freed = 0;       ///< transmissions freed by evictions
  std::int64_t repair_fallbacks = 0;  ///< ops that needed a full rerun
  std::int64_t rescheduled_flows = 0;  ///< suffix flows replayed in place

  tenant_stats& operator+=(const tenant_stats& other);
  friend bool operator==(const tenant_stats&, const tenant_stats&) = default;
};

/// One tenant network: a delta-scheduler arena driven by a
/// deterministic churn stream.
class tenant {
 public:
  tenant(const network_blueprint& blueprint, const fleet_config& config)
      : blueprint_(&blueprint),
        config_(&config),
        delta_(blueprint.reuse_hops, blueprint.sched_config) {}

  /// Applies op `op` of tenant `tenant_id`'s churn stream: draw the
  /// op's RNG from derive_seed(config.seed, tenant_id, op), decide
  /// admit vs evict, and run it through the delta scheduler. When
  /// `admit_ns` is non-null the wall-clock latency of each admission
  /// attempt is appended to it (a measurement — never fed back into
  /// control flow, so determinism is unaffected).
  void apply_op(std::uint64_t tenant_id, std::uint64_t op,
                tenant_stats& stats, std::vector<double>* admit_ns);

  const core::delta_scheduler& delta() const { return delta_; }

 private:
  const network_blueprint* blueprint_;
  const fleet_config* config_;
  core::delta_scheduler delta_;
};

/// Order-independent digest of a tenant's final scheduler state
/// (verdict, flow count, grid size, every placement). Summed across
/// tenants it fingerprints the whole fleet, which is how the tests pin
/// --jobs 1 vs --jobs 8 bit-identity without retaining every tenant.
std::uint64_t tenant_state_digest(std::uint64_t tenant_id,
                                  const core::delta_scheduler& delta);

/// Deterministic result of a churn run plus its measurements.
struct fleet_result {
  tenant_stats totals;
  std::int64_t tenants = 0;
  std::int64_t schedulable_tenants = 0;  ///< final schedulable() states
  std::int64_t final_flows = 0;          ///< sum of final flow counts
  std::uint64_t state_digest = 0;  ///< wrapping sum of tenant digests
  /// Admission latencies in tenant-id order (values are wall-clock
  /// noise; the ordering is deterministic). Excluded from equality.
  std::vector<double> admit_latency_ns;

  friend bool operator==(const fleet_result& a, const fleet_result& b) {
    return a.totals == b.totals && a.tenants == b.tenants &&
           a.schedulable_tenants == b.schedulable_tenants &&
           a.final_flows == b.final_flows &&
           a.state_digest == b.state_digest;
  }
};

class fleet_manager {
 public:
  explicit fleet_manager(fleet_config config)
      : config_(std::move(config)), blueprint_(make_blueprint(config_)) {}

  const fleet_config& config() const { return config_; }
  const network_blueprint& blueprint() const { return blueprint_; }

  /// Runs the full churn workload (tenants x ops_per_tenant) across
  /// `jobs` workers. The deterministic part of the result is
  /// bit-identical at any jobs value. When `recorder` is non-null it is
  /// fed one tenant-indexed window per tenant (after the parallel fold,
  /// in tenant order — deterministic) and triggered if any tenant ends
  /// the run unschedulable.
  fleet_result run_churn(int jobs,
                         obs::flight_recorder* recorder = nullptr) const;

  /// Re-runs one tenant in isolation — same derived streams, no
  /// siblings. Its stats and final state equal that tenant's slice of
  /// run_churn.
  tenant replay_tenant(std::uint64_t tenant_id,
                       tenant_stats* stats = nullptr) const;

 private:
  fleet_config config_;
  network_blueprint blueprint_;
};

}  // namespace wsan::fleet
