#include "exp/obs_io.h"

#include <fstream>
#include <ostream>

#include "common/error.h"
#include "common/table.h"

namespace wsan::exp {

namespace {

json::value metrics_to_json(const obs::snapshot& snap) {
  json::object counters;
  for (const auto& [name, count] : snap.counters)
    counters[name] = count;
  json::object gauges;
  for (const auto& [name, val] : snap.gauges) gauges[name] = val;
  json::object histograms;
  for (const auto& [name, hist] : snap.histograms) {
    json::object h;
    json::array bounds;
    for (const double b : hist.upper_bounds) bounds.emplace_back(b);
    json::array counts;
    for (const auto c : hist.counts) counts.emplace_back(c);
    h["upper_bounds"] = std::move(bounds);
    h["counts"] = std::move(counts);
    h["total"] = hist.total();
    histograms[name] = std::move(h);
  }
  json::object metrics;
  metrics["counters"] = std::move(counters);
  metrics["gauges"] = std::move(gauges);
  metrics["histograms"] = std::move(histograms);
  return json::value(std::move(metrics));
}

json::value timings_to_json(const obs::snapshot& snap) {
  json::object spans;
  for (const auto& [name, span] : snap.spans) {
    json::object s;
    s["count"] = span.count;
    s["total_ns"] = span.total_ns;
    spans[name] = std::move(s);
  }
  json::object timings;
  timings["spans"] = std::move(spans);
  return json::value(std::move(timings));
}

}  // namespace

json::value observability_section(const obs::snapshot& snap) {
  json::object obj;
  obj["metrics"] = metrics_to_json(snap);
  obj["timings"] = timings_to_json(snap);
  return json::value(std::move(obj));
}

json::value snapshot_to_json(const obs::snapshot& snap) {
  json::value v = observability_section(snap);
  v.as_object()["schema"] = "wsan-obs-snapshot/1";
  return v;
}

namespace {

const json::value* section_of(const json::value& doc) {
  if (!doc.is_object()) return nullptr;
  // A report container: descend into its observability section (which
  // may legitimately be null).
  if (doc.find("reports") != nullptr) return doc.find("observability");
  if (doc.find("metrics") != nullptr) return &doc;
  return nullptr;
}

void print_spans_json(const json::value& spans, std::ostream& os) {
  table t({"span", "count", "total_ms", "mean_us"});
  for (const auto& [name, span] : spans.as_object()) {
    const auto* count = span.find("count");
    const auto* total_ns = span.find("total_ns");
    WSAN_REQUIRE(count != nullptr && total_ns != nullptr,
                 "span entry is missing count/total_ns: " + name);
    const double n = count->as_double();
    const double ns = total_ns->as_double();
    t.add_row({name, cell(static_cast<long long>(count->as_int())), cell(ns / 1e6, 3),
               cell(n > 0 ? ns / n / 1e3 : 0.0, 3)});
  }
  if (t.num_rows() > 0) {
    os << "spans:\n";
    t.print(os);
  }
}

}  // namespace

bool print_obs_document(const json::value& doc, std::ostream& os) {
  const json::value* section = section_of(doc);
  WSAN_REQUIRE(section != nullptr,
               "not an observability document: expected a "
               "wsan-obs-snapshot or a bench report container");
  if (section->is_null()) {
    os << "observability: disabled for this run\n";
    return false;
  }
  WSAN_REQUIRE(section->is_object(),
               "observability section must be null or an object");
  const auto* metrics = section->find("metrics");
  WSAN_REQUIRE(metrics != nullptr && metrics->is_object(),
               "observability section is missing \"metrics\"");

  if (const auto* counters = metrics->find("counters");
      counters != nullptr && !counters->as_object().empty()) {
    table t({"counter", "value"});
    for (const auto& [name, val] : counters->as_object())
      t.add_row({name, cell(static_cast<long long>(val.as_int()))});
    os << "counters:\n";
    t.print(os);
  }
  if (const auto* gauges = metrics->find("gauges");
      gauges != nullptr && !gauges->as_object().empty()) {
    table t({"gauge", "value"});
    for (const auto& [name, val] : gauges->as_object())
      t.add_row({name, cell(val.as_double(), 6)});
    os << "gauges:\n";
    t.print(os);
  }
  if (const auto* hists = metrics->find("histograms");
      hists != nullptr && !hists->as_object().empty()) {
    table t({"histogram", "bucket", "count"});
    for (const auto& [name, hist] : hists->as_object()) {
      const auto* bounds = hist.find("upper_bounds");
      const auto* counts = hist.find("counts");
      WSAN_REQUIRE(bounds != nullptr && counts != nullptr,
                   "histogram entry is malformed: " + name);
      const auto& bounds_arr = bounds->as_array();
      const auto& counts_arr = counts->as_array();
      for (std::size_t i = 0; i < counts_arr.size(); ++i) {
        const std::string bucket =
            i < bounds_arr.size()
                ? "<= " + cell(bounds_arr[i].as_double(), 3)
                : "overflow";
        t.add_row({i == 0 ? name : "", bucket,
                   cell(static_cast<long long>(counts_arr[i].as_int()))});
      }
    }
    os << "histograms:\n";
    t.print(os);
  }
  if (const auto* timings = section->find("timings");
      timings != nullptr && timings->is_object()) {
    if (const auto* spans = timings->find("spans");
        spans != nullptr && spans->is_object())
      print_spans_json(*spans, os);
  }
  return true;
}

void print_span_table(const obs::snapshot& snap, std::ostream& os) {
  if (snap.spans.empty()) return;
  table t({"span", "count", "total_ms", "mean_us"});
  for (const auto& [name, span] : snap.spans) {
    const double ns = static_cast<double>(span.total_ns);
    const double n = static_cast<double>(span.count);
    t.add_row({name, cell(static_cast<long long>(span.count)),
               cell(ns / 1e6, 3), cell(n > 0 ? ns / n / 1e3 : 0.0, 3)});
  }
  t.print(os);
}

obs_session::obs_session(const run_options& options)
    : metrics_path_(options.metrics_path) {
  if (!options.obs_requested()) return;
  active_ = true;
  obs::reset_metrics();
  if (!options.trace_path.empty())
    obs::set_event_sink(
        std::make_shared<obs::jsonl_sink>(options.trace_path));
  obs::set_enabled(true);
}

const obs::snapshot& obs_session::finish() {
  if (finished_ || !active_) {
    finished_ = true;
    return snap_;
  }
  finished_ = true;
  snap_ = obs::take_snapshot();
  obs::set_enabled(false);
  obs::set_event_sink(nullptr);
  if (!metrics_path_.empty()) {
    std::ofstream out(metrics_path_);
    WSAN_REQUIRE(out.good(), "cannot open for writing: " + metrics_path_);
    json::write(snapshot_to_json(snap_), out);
    WSAN_REQUIRE(out.good(), "write failed: " + metrics_path_);
  }
  return snap_;
}

obs_session::~obs_session() {
  if (!active_ || finished_) return;
  // Unwinding past a live session: stop recording and drop the sink,
  // but skip the metrics file — a partial snapshot would look valid.
  obs::set_enabled(false);
  obs::set_event_sink(nullptr);
}

}  // namespace wsan::exp
