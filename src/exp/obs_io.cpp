#include "exp/obs_io.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <vector>

#include "common/error.h"
#include "common/table.h"

namespace wsan::exp {

namespace {

json::value metrics_to_json(const obs::snapshot& snap) {
  json::object counters;
  for (const auto& [name, count] : snap.counters)
    counters[name] = count;
  json::object gauges;
  for (const auto& [name, val] : snap.gauges) gauges[name] = val;
  json::object histograms;
  for (const auto& [name, hist] : snap.histograms) {
    json::object h;
    json::array bounds;
    for (const double b : hist.upper_bounds) bounds.emplace_back(b);
    json::array counts;
    for (const auto c : hist.counts) counts.emplace_back(c);
    h["upper_bounds"] = std::move(bounds);
    h["counts"] = std::move(counts);
    h["total"] = hist.total();
    histograms[name] = std::move(h);
  }
  json::object metrics;
  metrics["counters"] = std::move(counters);
  metrics["gauges"] = std::move(gauges);
  metrics["histograms"] = std::move(histograms);
  return json::value(std::move(metrics));
}

json::value timings_to_json(const obs::snapshot& snap) {
  json::object spans;
  for (const auto& [name, span] : snap.spans) {
    json::object s;
    s["count"] = span.count;
    s["total_ns"] = span.total_ns;
    spans[name] = std::move(s);
  }
  json::object timings;
  timings["spans"] = std::move(spans);
  return json::value(std::move(timings));
}

}  // namespace

json::value observability_section(const obs::snapshot& snap) {
  json::object obj;
  obj["metrics"] = metrics_to_json(snap);
  obj["timings"] = timings_to_json(snap);
  return json::value(std::move(obj));
}

json::value snapshot_to_json(const obs::snapshot& snap) {
  json::value v = observability_section(snap);
  v.as_object()["schema"] = "wsan-obs-snapshot/1";
  return v;
}

namespace {

const json::value* section_of(const json::value& doc) {
  if (!doc.is_object()) return nullptr;
  // A report container: descend into its observability section (which
  // may legitimately be null).
  if (doc.find("reports") != nullptr) return doc.find("observability");
  if (doc.find("metrics") != nullptr) return &doc;
  return nullptr;
}

void print_spans_json(const json::value& spans, std::ostream& os) {
  table t({"span", "count", "total_ms", "mean_us"});
  for (const auto& [name, span] : spans.as_object()) {
    const auto* count = span.find("count");
    const auto* total_ns = span.find("total_ns");
    WSAN_REQUIRE(count != nullptr && total_ns != nullptr,
                 "span entry is missing count/total_ns: " + name);
    const double n = count->as_double();
    const double ns = total_ns->as_double();
    t.add_row({name, cell(static_cast<long long>(count->as_int())), cell(ns / 1e6, 3),
               cell(n > 0 ? ns / n / 1e3 : 0.0, 3)});
  }
  if (t.num_rows() > 0) {
    os << "spans:\n";
    t.print(os);
  }
}

}  // namespace

bool print_obs_document(const json::value& doc, std::ostream& os) {
  const json::value* section = section_of(doc);
  WSAN_REQUIRE(section != nullptr,
               "not an observability document: expected a "
               "wsan-obs-snapshot or a bench report container");
  if (section->is_null()) {
    os << "observability: disabled for this run\n";
    return false;
  }
  WSAN_REQUIRE(section->is_object(),
               "observability section must be null or an object");
  const auto* metrics = section->find("metrics");
  WSAN_REQUIRE(metrics != nullptr && metrics->is_object(),
               "observability section is missing \"metrics\"");

  if (const auto* counters = metrics->find("counters");
      counters != nullptr && !counters->as_object().empty()) {
    table t({"counter", "value"});
    for (const auto& [name, val] : counters->as_object())
      t.add_row({name, cell(static_cast<long long>(val.as_int()))});
    os << "counters:\n";
    t.print(os);
  }
  if (const auto* gauges = metrics->find("gauges");
      gauges != nullptr && !gauges->as_object().empty()) {
    table t({"gauge", "value"});
    for (const auto& [name, val] : gauges->as_object())
      t.add_row({name, cell(val.as_double(), 6)});
    os << "gauges:\n";
    t.print(os);
  }
  if (const auto* hists = metrics->find("histograms");
      hists != nullptr && !hists->as_object().empty()) {
    table t({"histogram", "bucket", "count"});
    for (const auto& [name, hist] : hists->as_object()) {
      const auto* bounds = hist.find("upper_bounds");
      const auto* counts = hist.find("counts");
      WSAN_REQUIRE(bounds != nullptr && counts != nullptr,
                   "histogram entry is malformed: " + name);
      const auto& bounds_arr = bounds->as_array();
      const auto& counts_arr = counts->as_array();
      for (std::size_t i = 0; i < counts_arr.size(); ++i) {
        const std::string bucket =
            i < bounds_arr.size()
                ? "<= " + cell(bounds_arr[i].as_double(), 3)
                : "overflow";
        t.add_row({i == 0 ? name : "", bucket,
                   cell(static_cast<long long>(counts_arr[i].as_int()))});
      }
    }
    os << "histograms:\n";
    t.print(os);
  }
  if (const auto* timings = section->find("timings");
      timings != nullptr && timings->is_object()) {
    if (const auto* spans = timings->find("spans");
        spans != nullptr && spans->is_object())
      print_spans_json(*spans, os);
  }
  return true;
}

void print_span_table(const obs::snapshot& snap, std::ostream& os) {
  if (snap.spans.empty()) return;
  table t({"span", "count", "total_ms", "mean_us"});
  for (const auto& [name, span] : snap.spans) {
    const double ns = static_cast<double>(span.total_ns);
    const double n = static_cast<double>(span.count);
    t.add_row({name, cell(static_cast<long long>(span.count)),
               cell(ns / 1e6, 3), cell(n > 0 ? ns / n / 1e3 : 0.0, 3)});
  }
  t.print(os);
}

// ----------------------------------------------- temporal telemetry --

obs::series series_from_jsonl(std::istream& is) {
  obs::series s;
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const json::value v = json::parse(line);
    WSAN_REQUIRE(v.is_object(), "series line must be a JSON object");
    if (!saw_header) {
      const auto* schema = v.find("schema");
      WSAN_REQUIRE(schema != nullptr && schema->is_string() &&
                       schema->as_string() == "wsan-series/1",
                   "series header must declare wsan-series/1");
      if (const auto* name = v.find("name")) s.name = name->as_string();
      if (const auto* unit = v.find("index_unit"))
        s.index_unit = unit->as_string();
      saw_header = true;
      continue;
    }
    obs::series_window w;
    const auto* index = v.find("index");
    const auto* values = v.find("values");
    WSAN_REQUIRE(index != nullptr && index->is_int() &&
                     values != nullptr && values->is_object(),
                 "series window line is missing index/values");
    w.index = index->as_int();
    for (const auto& [name, val] : values->as_object())
      w.values[name] = val.as_double();
    if (const auto* hists = v.find("histograms")) {
      for (const auto& [name, h] : hists->as_object()) {
        obs::histogram_snapshot hs;
        const auto* bounds = h.find("upper_bounds");
        const auto* counts = h.find("counts");
        WSAN_REQUIRE(bounds != nullptr && counts != nullptr,
                     "series histogram is malformed: " + name);
        for (const auto& b : bounds->as_array())
          hs.upper_bounds.push_back(b.as_double());
        for (const auto& c : counts->as_array())
          hs.counts.push_back(static_cast<std::uint64_t>(c.as_int()));
        w.histograms[name] = std::move(hs);
      }
    }
    WSAN_REQUIRE(s.windows.empty() || w.index > s.windows.back().index,
                 "series windows out of order");
    s.windows.push_back(std::move(w));
  }
  WSAN_REQUIRE(saw_header, "not a series file: no wsan-series/1 header");
  return s;
}

obs::series series_from_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  WSAN_REQUIRE(in.is_open(), "cannot open series file: " + path);
  return series_from_jsonl(in);
}

obs::series series_from_panel(const report_panel& panel,
                              std::string name) {
  obs::series s;
  s.name = std::move(name);
  s.index_unit = panel.x_label.empty() ? "epoch" : panel.x_label;
  for (const auto& point : panel.points) {
    obs::series_window w;
    w.index = static_cast<std::int64_t>(point.x);
    w.values = point.values;
    s.windows.push_back(std::move(w));
  }
  return s;
}

json::value health_section(
    const obs::slo_policy& policy,
    const std::vector<std::pair<std::string, obs::health_verdict>>&
        verdicts) {
  json::array rules;
  for (const auto& rule : policy.rules) {
    json::object r;
    r["metric"] = rule.metric;
    r["kind"] = std::string(obs::to_string(rule.kind));
    r["bound"] = rule.bound;
    r["severity"] = std::string(obs::to_string(rule.sev));
    rules.emplace_back(std::move(r));
  }
  json::object verdict_obj;
  for (const auto& [subject, verdict] : verdicts) {
    json::object v;
    v["healthy"] = verdict.healthy;
    v["windows"] = verdict.windows_evaluated;
    v["errors"] = verdict.errors();
    v["warnings"] = verdict.warnings();
    json::array violations;
    for (const auto& viol : verdict.violations) {
      json::object o;
      o["window"] = viol.window_index;
      o["metric"] = viol.metric;
      o["value"] = viol.value;
      o["bound"] = viol.bound;
      o["kind"] = std::string(obs::to_string(viol.kind));
      o["severity"] = std::string(obs::to_string(viol.sev));
      violations.emplace_back(std::move(o));
    }
    v["violations"] = std::move(violations);
    verdict_obj[subject] = std::move(v);
  }
  json::object health;
  health["policy"] = std::move(rules);
  health["verdicts"] = std::move(verdict_obj);
  return json::value(std::move(health));
}

bool print_health_block(const json::value& health, std::ostream& os) {
  WSAN_REQUIRE(health.is_object(), "health block must be an object");
  const auto* verdicts = health.find("verdicts");
  WSAN_REQUIRE(verdicts != nullptr && verdicts->is_object(),
               "health block is missing \"verdicts\"");
  if (const auto* policy = health.find("policy");
      policy != nullptr && policy->is_array() &&
      !policy->as_array().empty()) {
    table t({"metric", "kind", "bound", "severity"});
    for (const auto& rule : policy->as_array())
      t.add_row({rule.find("metric")->as_string(),
                 rule.find("kind")->as_string(),
                 cell(rule.find("bound")->as_double(), 4),
                 rule.find("severity")->as_string()});
    os << "policy:\n";
    t.print(os);
  }
  bool all_healthy = true;
  table t({"subject", "verdict", "windows", "errors", "warnings"});
  for (const auto& [subject, verdict] : verdicts->as_object()) {
    const auto* healthy = verdict.find("healthy");
    WSAN_REQUIRE(healthy != nullptr, "verdict is missing \"healthy\"");
    const bool ok = healthy->as_bool();
    all_healthy = all_healthy && ok;
    const auto count_of = [&](const char* key) -> long long {
      const auto* member = verdict.find(key);
      return member != nullptr ? member->as_int() : 0;
    };
    t.add_row({subject, ok ? "healthy" : "VIOLATED",
               cell(count_of("windows")), cell(count_of("errors")),
               cell(count_of("warnings"))});
  }
  os << "verdicts:\n";
  t.print(os);
  // Every individual violation, for post-mortem drill-down.
  table viol({"subject", "window", "metric", "value", "bound", "kind",
              "severity"});
  for (const auto& [subject, verdict] : verdicts->as_object()) {
    const auto* violations = verdict.find("violations");
    if (violations == nullptr || !violations->is_array()) continue;
    for (const auto& v : violations->as_array())
      viol.add_row({subject,
                    cell(static_cast<long long>(
                        v.find("window")->as_int())),
                    v.find("metric")->as_string(),
                    cell(v.find("value")->as_double(), 4),
                    cell(v.find("bound")->as_double(), 4),
                    v.find("kind")->as_string(),
                    v.find("severity")->as_string()});
  }
  if (viol.num_rows() > 0) {
    os << "violations:\n";
    viol.print(os);
  }
  return all_healthy;
}

namespace {

std::string sparkline(const std::vector<double>& values) {
  static const char* const k_blocks[] = {"▁", "▂", "▃", "▄",
                                         "▅", "▆", "▇", "█"};
  double lo = values.empty() ? 0.0 : values[0];
  double hi = lo;
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (const double v : values) {
    const double span = hi - lo;
    const int level =
        span > 0.0
            ? std::min(7, static_cast<int>((v - lo) / span * 8.0))
            : 0;
    out += k_blocks[level];
  }
  return out;
}

}  // namespace

void print_series_table(const obs::series& s, std::ostream& os) {
  os << "series \"" << s.name << "\": " << s.windows.size() << " "
     << s.index_unit << "-indexed windows\n";
  if (s.windows.empty()) return;
  std::map<std::string, std::vector<double>> columns;
  for (const auto& w : s.windows)
    for (const auto& [name, value] : w.values)
      columns[name].push_back(value);
  table t({"metric", "min", "mean", "max", "last", "trend"});
  for (const auto& [name, values] : columns) {
    double lo = values[0], hi = values[0], sum = 0.0;
    for (const double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    t.add_row({name, cell(lo, 3),
               cell(sum / static_cast<double>(values.size()), 3),
               cell(hi, 3), cell(values.back(), 3), sparkline(values)});
  }
  t.print(os);
}

obs_session::obs_session(const run_options& options)
    : obs_session(options, nullptr) {}

obs_session::obs_session(const run_options& options,
                         std::shared_ptr<obs::event_sink> extra_sink)
    : metrics_path_(options.metrics_path) {
  if (!options.obs_requested() && extra_sink == nullptr) return;
  active_ = true;
  obs::reset_metrics();
  std::vector<std::shared_ptr<obs::event_sink>> sinks;
  if (!options.trace_path.empty())
    sinks.push_back(std::make_shared<obs::jsonl_sink>(options.trace_path));
  if (extra_sink != nullptr) sinks.push_back(std::move(extra_sink));
  if (sinks.size() == 1)
    obs::set_event_sink(std::move(sinks.front()));
  else if (sinks.size() > 1)
    obs::set_event_sink(std::make_shared<obs::tee_sink>(std::move(sinks)));
  obs::set_enabled(true);
}

const obs::snapshot& obs_session::finish() {
  if (finished_ || !active_) {
    finished_ = true;
    return snap_;
  }
  finished_ = true;
  snap_ = obs::take_snapshot();
  obs::set_enabled(false);
  obs::set_event_sink(nullptr);
  if (!metrics_path_.empty()) {
    std::ofstream out(metrics_path_);
    WSAN_REQUIRE(out.good(), "cannot open for writing: " + metrics_path_);
    json::write(snapshot_to_json(snap_), out);
    WSAN_REQUIRE(out.good(), "write failed: " + metrics_path_);
  }
  return snap_;
}

obs_session::~obs_session() {
  if (!active_ || finished_) return;
  // Unwinding past a live session: stop recording and drop the sink,
  // but skip the metrics file — a partial snapshot would look valid.
  obs::set_enabled(false);
  obs::set_event_sink(nullptr);
}

}  // namespace wsan::exp
