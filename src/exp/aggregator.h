// Order-independent result aggregation for parallel experiments.
//
// An aggregator accumulates three kinds of metrics, all with
// commutative + associative merge semantics so that fan-in order (and
// therefore the thread count) cannot change the aggregate:
//
//  * counts   — named int64 counters (exact, any merge order);
//  * values   — named doubles keyed BY TRIAL INDEX; sums are taken in
//               trial order at read time, so even floating-point
//               accumulation is independent of which worker ran which
//               trial;
//  * hists    — named integer histograms (exact per-bin addition).
//
// Wilson confidence intervals are computed on demand from count pairs,
// never stored, so they inherit the counters' exactness.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/histogram.h"
#include "stats/summary.h"

namespace wsan::exp {

class aggregator {
 public:
  void add_count(const std::string& name, std::int64_t delta = 1);

  /// Records one trial's value of a named metric. A (name, trial)
  /// pair must be recorded at most once across all merged aggregators.
  void add_value(const std::string& name, int trial, double value);

  void add_histogram(const std::string& name, const histogram& h);

  /// Commutative merge; duplicate (name, trial) values are rejected.
  aggregator& operator+=(const aggregator& other);

  std::int64_t count(const std::string& name) const;  ///< 0 when absent

  /// Sum of a value metric, taken in ascending trial order (bit-stable
  /// for any merge order). 0 when absent.
  double sum(const std::string& name) const;
  /// Number of trials that recorded the metric.
  int value_count(const std::string& name) const;
  /// sum/value_count; 0 when no trials recorded the metric.
  double mean(const std::string& name) const;
  /// Smallest recorded trial value; 0 when absent. The robust
  /// statistic for wall-time metrics: scheduler and cache noise only
  /// ever add time, so the minimum is the least-perturbed execution.
  double min(const std::string& name) const;

  /// nullptr when no histogram of that name was recorded.
  const histogram* hist(const std::string& name) const;

  /// Wilson interval of count(successes) out of count(trials).
  stats::proportion_interval ratio(const std::string& successes,
                                   const std::string& trials) const;

 private:
  std::map<std::string, std::int64_t> counts_;
  std::map<std::string, std::map<int, double>> values_;
  std::map<std::string, histogram> hists_;
};

}  // namespace wsan::exp
