// Bridges the observability subsystem (src/obs) into the experiment
// harness: JSON conversion of metrics snapshots, the report
// container's "observability" section, per-run obs sessions driven by
// run_options, and the text rendering behind `wsanctl obs`.
//
// A standalone metrics file (--metrics FILE) is the versioned document
//
//   { "schema": "wsan-obs-snapshot/1",
//     "metrics": { "counters": {..}, "gauges": {..}, "histograms": {..} },
//     "timings": { "spans": { "<name>": { "count": N, "total_ns": N } } } }
//
// Everything under "metrics" (and span counts) is deterministic for a
// deterministic workload; "timings" holds wall-clock measurements and
// is the clearly non-deterministic side section. The report
// container's "observability" value is the same document minus its
// "schema" key.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/json.h"
#include "exp/options.h"
#include "exp/report.h"
#include "obs/events.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace wsan::exp {

/// The standalone snapshot document (with "schema").
json::value snapshot_to_json(const obs::snapshot& snap);

/// The report container's "observability" section (without "schema").
json::value observability_section(const obs::snapshot& snap);

/// Renders a snapshot document, a report observability section, or a
/// whole report container (its observability section is extracted) as
/// aligned text tables. Returns false — printing a note instead — when
/// the document's observability section is null.
bool print_obs_document(const json::value& doc, std::ostream& os);

/// Prints the span table of a snapshot (name, count, total ms, mean
/// us) — the per-phase breakdown benches show when obs is enabled.
void print_span_table(const obs::snapshot& snap, std::ostream& os);

// --------------------------------------------- temporal telemetry --
// obs writes series and dumps with hand-rolled serialisation; the exp
// layer owns parsing (exp::json) and rendering, keeping src/obs free
// of upward dependencies.

/// Parses a wsan-series/1 JSONL stream (obs::write_series_jsonl).
obs::series series_from_jsonl(std::istream& is);
obs::series series_from_jsonl_file(const std::string& path);

/// Reconstructs a series from a per-epoch report panel: point.x
/// becomes the window index, the point's values the window values.
obs::series series_from_panel(const report_panel& panel,
                              std::string name);

/// The per-figure "health" block stored under the report container's
/// optional "health" key: the policy that was evaluated plus one
/// verdict per subject (bench point name, tenant, ...).
json::value health_section(
    const obs::slo_policy& policy,
    const std::vector<std::pair<std::string, obs::health_verdict>>&
        verdicts);

/// Renders one figure's health block as tables. Returns true iff every
/// verdict in it is healthy.
bool print_health_block(const json::value& health, std::ostream& os);

/// Renders a series as one row per metric — min / mean / max / last
/// plus a unicode sparkline over the windows (the `wsanctl top` view).
void print_series_table(const obs::series& s, std::ostream& os);

/// Per-run observability session. When the options request any
/// observability output, the constructor resets the metrics registry,
/// enables recording, and — for --trace — installs a JSONL event sink.
/// finish() takes the snapshot, writes the --metrics file if
/// requested, uninstalls the sink, and disables recording; the
/// destructor does the same bookkeeping (without file writes beyond
/// the trace already streamed) if finish() was never reached.
class obs_session {
 public:
  explicit obs_session(const run_options& options);
  /// Same, with an additional event sink (e.g. a flight recorder) that
  /// is tee'd with the --trace sink. A non-null extra sink activates
  /// the session even when the options request no other output.
  obs_session(const run_options& options,
              std::shared_ptr<obs::event_sink> extra_sink);
  ~obs_session();

  obs_session(const obs_session&) = delete;
  obs_session& operator=(const obs_session&) = delete;

  /// True when this session turned observability on.
  bool active() const { return active_; }

  /// Ends collection and returns the merged snapshot (empty when the
  /// session was inactive). Idempotent.
  const obs::snapshot& finish();

 private:
  bool active_ = false;
  bool finished_ = false;
  std::string metrics_path_;
  obs::snapshot snap_;
};

}  // namespace wsan::exp
