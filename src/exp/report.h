// Machine-readable experiment reports.
//
// Every migrated bench emits its series twice: the human-readable text
// tables it always printed, and a structured JSON report
// (--json FILE) that downstream tooling can diff, plot, and
// regression-track. The JSON container schema
// (docs/bench_report.schema.json) is:
//
//   { "schema": "wsan-bench-report/1",
//     "commit": "<git hash or unknown>",
//     "observability": null | { "metrics": {...}, "timings": {...} },
//     "reports": [ {
//       "figure": "fig1", "title": "...",
//       "seed": 101, "jobs": 8, "trials": 50,
//       "wall_seconds": 12.7,
//       "parameters": { "testbed": "indriya", ... },
//       "panels": [ {
//         "name": "(a) P=[2^0,2^2]s", "x_label": "#channels",
//         "points": [ { "x": 3, "values": { "nr": 0.30, ... } } ] } ] } ] }
//
// Doubles round-trip bit-exactly (see exp/json.h), so a report can be
// re-parsed and compared against in-memory aggregates to full
// precision.
//
// The "observability" key is always present: null when the run did not
// collect observability data (explicit, so a missing key flags a
// malformed document), otherwise the object built by
// exp::observability_section. Everything under "observability", the
// per-report "wall_seconds", and any panel series a report lists in
// "measurement_keys" (e.g. fig6's per-algorithm milliseconds) are
// *measurements*; science_payload() strips exactly those, and the
// remainder is bit-identical across --jobs values and across
// obs-on/obs-off runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/json.h"

namespace wsan::exp {

struct report_point {
  double x = 0.0;
  std::map<std::string, double> values;  ///< series name -> value at x
};

struct report_panel {
  std::string name;
  std::string x_label;
  std::vector<report_point> points;
};

struct figure_report {
  std::string figure;  ///< stable id, e.g. "fig1"
  std::string title;
  std::uint64_t seed = 0;
  int jobs = 1;
  int trials = 0;
  double wall_seconds = 0.0;
  std::map<std::string, std::string> parameters;
  /// Panel series names whose values are wall-clock measurements
  /// (e.g. fig6's "rc_ms"). science_payload() zeroes these so the
  /// payload stays bit-comparable; deterministic series stay put.
  std::vector<std::string> measurement_keys;
  std::vector<report_panel> panels;
  /// Optional per-figure SLO verdict (an object, e.g. from
  /// exp::health_section); null when the figure computed none. Emitted
  /// under the container's optional "health" key, keyed by figure id,
  /// and stripped by science_payload().
  json::value health;
  /// Path of the series file this figure wrote ("" = none). Emitted as
  /// the report's optional "series_file" pointer key — run provenance,
  /// stripped by science_payload().
  std::string series_path;
};

/// The commit baked in at build time (WSAN_GIT_COMMIT), or "unknown".
std::string build_commit();

json::value to_json(const figure_report& report);
/// Wraps reports in the versioned container object with
/// "observability": null.
json::value to_json(const std::vector<figure_report>& reports);
/// Same, with an explicit observability section (must be null or an
/// object, e.g. from exp::observability_section).
json::value to_json(const std::vector<figure_report>& reports,
                    json::value observability);

figure_report report_from_json(const json::value& v);
/// Parses a container document (as produced by to_json above).
std::vector<figure_report> reports_from_json(const json::value& v);

/// Structural schema validation of a container document. Returns all
/// violations ("/reports/0/panels: expected array", ...); empty means
/// the document is schema-valid.
std::vector<std::string> validate_reports_json(const json::value& v);

/// The deterministic part of a container document: a copy with the
/// "observability" section nulled, the optional "health" verdict and
/// per-report "series_file" pointers removed, every report's
/// "wall_seconds" and "jobs" (run provenance) zeroed, and every panel
/// value listed in a report's "measurement_keys" zeroed. Two runs of
/// the same experiment agree on this to the bit, whatever --jobs,
/// --metrics/--trace, or --series they used.
json::value science_payload(const json::value& container);

/// Writes the container document to `path` (throws on I/O failure).
void write_reports_file(const std::vector<figure_report>& reports,
                        const std::string& path);
/// Same, with an explicit observability section.
void write_reports_file(const std::vector<figure_report>& reports,
                        json::value observability,
                        const std::string& path);

}  // namespace wsan::exp
