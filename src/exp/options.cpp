#include "exp/options.h"

#include <stdexcept>

#include "common/error.h"

namespace wsan::exp {

replay_target parse_replay_target(const std::string& spec) {
  const auto colon = spec.find(':');
  WSAN_REQUIRE(colon != std::string::npos,
               "--replay expects POINT:TRIAL, got: " + spec);
  replay_target target;
  try {
    target.point = std::stoi(spec.substr(0, colon));
    target.trial = std::stoi(spec.substr(colon + 1));
  } catch (const std::exception&) {
    throw std::invalid_argument("--replay expects POINT:TRIAL, got: " +
                                spec);
  }
  WSAN_REQUIRE(target.point >= 0 && target.trial >= 0,
               "--replay indices must be non-negative: " + spec);
  return target;
}

run_options parse_run_options(const cli_args& args) {
  run_options options;
  options.jobs = static_cast<int>(args.get_int("jobs", 1));
  WSAN_REQUIRE(options.jobs >= 0, "--jobs must be >= 0 (0 = all cores)");
  options.trials = static_cast<int>(args.get_int("trials", -1));
  options.seed_overridden = args.has("seed");
  options.seed = args.get_uint64("seed", 0);
  options.json_path = args.get("json", "");
  options.metrics_path = args.get("metrics", "");
  options.trace_path = args.get("trace", "");
  options.series_path = args.get("series", "");
  options.fade_kernel = args.get("fade-kernel", "oracle");
  WSAN_REQUIRE(options.fade_kernel == "oracle" ||
                   options.fade_kernel == "batched",
               "--fade-kernel must be 'oracle' or 'batched', got: " +
                   options.fade_kernel);
  if (args.has("replay"))
    options.replay = parse_replay_target(args.get("replay", ""));
  return options;
}

std::string run_options::series_file_for(const std::string& figure) const {
  if (series_path.empty()) return {};
  const auto dot = series_path.rfind('.');
  const auto slash = series_path.find_last_of("/\\");
  const bool has_ext =
      dot != std::string::npos &&
      (slash == std::string::npos || dot > slash);
  if (!has_ext) return series_path + "." + figure;
  return series_path.substr(0, dot) + "." + figure +
         series_path.substr(dot);
}

}  // namespace wsan::exp
