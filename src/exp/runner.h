// Parallel deterministic trial execution.
//
// The paper's evaluation is embarrassingly parallel across Monte-Carlo
// trials, and determinism is the whole point of the reproduction — so
// the runner is built so that the thread count can NEVER change a
// result:
//
//  * each trial's RNG stream is a pure function of
//    (experiment_seed, point_index, trial_index) via derive_seed(),
//    not of a shared sequential generator;
//  * trial results fold into per-worker partials that are merged with a
//    commutative, associative operator+=, so the dynamic assignment of
//    trials to workers cannot reorder anything observable.
//
// Together these make `--jobs 8` bit-identical to `--jobs 1`
// (tests/exp_test.cpp asserts this), and let `--replay point:trial`
// re-run any single trial in isolation.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace wsan::exp {

/// Maps the user-facing --jobs value to a worker count: 0 means "all
/// hardware threads", anything else is clamped to >= 1.
int resolve_jobs(int jobs);

/// Runs body(worker, trial) for every trial in [0, trials) across
/// `jobs` worker threads pulling trials from a shared atomic counter.
/// With jobs <= 1 everything runs inline on the calling thread. The
/// first exception thrown by any worker is rethrown after all workers
/// joined.
void parallel_trials(int trials, int jobs,
                     const std::function<void(int, int)>& body);

/// Fans trials out over a fixed number of worker threads.
class trial_runner {
 public:
  explicit trial_runner(int jobs = 1) : jobs_(resolve_jobs(jobs)) {}

  int jobs() const { return jobs_; }

  /// Runs `trials` trials of one experiment data point.
  ///
  /// Result must be default-constructible and define operator+= as a
  /// commutative and associative merge (integer counters, histograms,
  /// per-trial keyed values — not order-sensitive floating point sums).
  /// Body is invoked as body(trial_index, gen, local) with `gen` freshly
  /// derived from (experiment_seed, point_index, trial_index).
  template <typename Result, typename Body>
  Result run_point(std::uint64_t experiment_seed,
                   std::uint64_t point_index, int trials,
                   Body&& body) const {
    std::vector<Result> partials(
        static_cast<std::size_t>(jobs_ > 0 ? jobs_ : 1));
    parallel_trials(trials, jobs_, [&](int worker, int trial) {
      rng gen = rng(derive_seed(experiment_seed, point_index,
                                static_cast<std::uint64_t>(trial)));
      body(trial, gen, partials[static_cast<std::size_t>(worker)]);
    });
    Result total{};
    for (auto& partial : partials) total += partial;
    return total;
  }

  /// Replays a single trial of a point in isolation: same derived
  /// stream, same body, no siblings. The result is identical to that
  /// trial's contribution within a full run.
  template <typename Result, typename Body>
  static Result replay_trial(std::uint64_t experiment_seed,
                             std::uint64_t point_index, int trial,
                             Body&& body) {
    Result local{};
    rng gen = rng(derive_seed(experiment_seed, point_index,
                              static_cast<std::uint64_t>(trial)));
    body(trial, gen, local);
    return local;
  }

 private:
  int jobs_;
};

}  // namespace wsan::exp
