// Minimal JSON value, writer, and parser for the experiment reports.
//
// The repo deliberately carries no third-party JSON dependency; the
// bench report schema (docs/bench_report.schema.json) only needs
// objects, arrays, strings, numbers, and booleans. Doubles are written
// with std::to_chars shortest round-trip formatting, so
// parse(write(v)) reproduces every double bit-for-bit — the JSON
// round-trip test in tests/exp_test.cpp relies on this.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace wsan::exp::json {

class value;

using array = std::vector<value>;
/// std::map keeps keys sorted, so emission order is deterministic.
using object = std::map<std::string, value>;

/// A JSON document node. Integers and doubles are kept distinct so that
/// counters (trials, seeds) round-trip without a float detour.
class value {
 public:
  value() : v_(nullptr) {}
  value(std::nullptr_t) : v_(nullptr) {}
  value(bool b) : v_(b) {}
  value(std::int64_t i) : v_(i) {}
  value(int i) : v_(static_cast<std::int64_t>(i)) {}
  value(std::uint64_t u) : v_(static_cast<std::int64_t>(u)) {}
  value(double d) : v_(d) {}
  value(const char* s) : v_(std::string(s)) {}
  value(std::string s) : v_(std::move(s)) {}
  value(array a) : v_(std::move(a)) {}
  value(object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  /// True for any JSON number (integer-shaped or not).
  bool is_number() const {
    return is_int() || std::holds_alternative<double>(v_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<array>(v_); }
  bool is_object() const { return std::holds_alternative<object>(v_); }

  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  ///< accepts integer-shaped numbers too
  const std::string& as_string() const;
  const array& as_array() const;
  const object& as_object() const;
  array& as_array();
  object& as_object();

  /// Object member lookup; nullptr when absent or not an object.
  const value* find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               array, object>
      v_;
};

/// Pretty-prints with 2-space indentation and a trailing newline at the
/// top level.
void write(const value& v, std::ostream& os);
std::string to_string(const value& v);

/// Parses a complete JSON document; throws std::invalid_argument with a
/// byte offset on malformed input or trailing garbage.
value parse(const std::string& text);

}  // namespace wsan::exp::json
