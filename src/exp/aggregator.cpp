#include "exp/aggregator.h"

#include "common/error.h"

namespace wsan::exp {

void aggregator::add_count(const std::string& name, std::int64_t delta) {
  counts_[name] += delta;
}

void aggregator::add_value(const std::string& name, int trial,
                           double value) {
  const auto [it, inserted] = values_[name].emplace(trial, value);
  (void)it;
  WSAN_REQUIRE(inserted, "duplicate trial value for metric " + name +
                             ", trial " + std::to_string(trial));
}

void aggregator::add_histogram(const std::string& name,
                               const histogram& h) {
  hists_[name].merge(h);
}

aggregator& aggregator::operator+=(const aggregator& other) {
  for (const auto& [name, delta] : other.counts_) counts_[name] += delta;
  for (const auto& [name, trials] : other.values_)
    for (const auto& [trial, value] : trials)
      add_value(name, trial, value);
  for (const auto& [name, h] : other.hists_) hists_[name].merge(h);
  return *this;
}

std::int64_t aggregator::count(const std::string& name) const {
  const auto it = counts_.find(name);
  return it == counts_.end() ? 0 : it->second;
}

double aggregator::sum(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return 0.0;
  double total = 0.0;
  for (const auto& [trial, value] : it->second) total += value;
  return total;
}

int aggregator::value_count(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0 : static_cast<int>(it->second.size());
}

double aggregator::mean(const std::string& name) const {
  const int n = value_count(name);
  return n == 0 ? 0.0 : sum(name) / n;
}

double aggregator::min(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return 0.0;
  double best = it->second.begin()->second;
  for (const auto& [trial, value] : it->second)
    best = value < best ? value : best;
  return best;
}

const histogram* aggregator::hist(const std::string& name) const {
  const auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

stats::proportion_interval aggregator::ratio(
    const std::string& successes, const std::string& trials) const {
  return stats::wilson_interval(static_cast<int>(count(successes)),
                                static_cast<int>(count(trials)));
}

}  // namespace wsan::exp
