#include "exp/runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.h"

namespace wsan::exp {

int resolve_jobs(int jobs) {
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return jobs < 1 ? 1 : jobs;
}

void parallel_trials(int trials, int jobs,
                     const std::function<void(int, int)>& body) {
  WSAN_REQUIRE(trials >= 0, "trials must be non-negative");
  jobs = resolve_jobs(jobs);
  if (trials == 0) return;
  if (jobs == 1 || trials == 1) {
    for (int trial = 0; trial < trials; ++trial) body(0, trial);
    return;
  }
  if (jobs > trials) jobs = trials;

  // Dynamic single-trial dispatch: trial bodies are milliseconds-scale
  // (flow generation + three scheduler runs), so per-trial atomic
  // increments are negligible and give the best load balance for
  // heavy-tailed trial costs.
  std::atomic<int> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker_loop = [&](int worker) {
    for (;;) {
      const int trial = next.fetch_add(1, std::memory_order_relaxed);
      if (trial >= trials) return;
      try {
        body(worker, trial);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain remaining trials so all workers stop promptly.
        next.store(trials, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs) - 1);
  for (int w = 1; w < jobs; ++w) workers.emplace_back(worker_loop, w);
  worker_loop(0);
  for (auto& thread : workers) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace wsan::exp
