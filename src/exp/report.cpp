#include "exp/report.h"

#include <fstream>
#include <set>

#include "common/error.h"

namespace wsan::exp {

std::string build_commit() {
#ifdef WSAN_GIT_COMMIT
  return WSAN_GIT_COMMIT;
#else
  return "unknown";
#endif
}

json::value to_json(const figure_report& report) {
  json::object obj;
  obj["figure"] = report.figure;
  obj["title"] = report.title;
  obj["seed"] = report.seed;
  obj["jobs"] = report.jobs;
  obj["trials"] = report.trials;
  obj["wall_seconds"] = report.wall_seconds;
  json::object params;
  for (const auto& [key, val] : report.parameters) params[key] = val;
  obj["parameters"] = std::move(params);
  json::array measured;
  for (const auto& key : report.measurement_keys)
    measured.emplace_back(key);
  obj["measurement_keys"] = std::move(measured);
  json::array panels;
  for (const auto& panel : report.panels) {
    json::object p;
    p["name"] = panel.name;
    p["x_label"] = panel.x_label;
    json::array points;
    for (const auto& point : panel.points) {
      json::object pt;
      pt["x"] = point.x;
      json::object values;
      for (const auto& [series, value] : point.values)
        values[series] = value;
      pt["values"] = std::move(values);
      points.emplace_back(std::move(pt));
    }
    p["points"] = std::move(points);
    panels.emplace_back(std::move(p));
  }
  obj["panels"] = std::move(panels);
  if (!report.series_path.empty()) obj["series_file"] = report.series_path;
  return json::value(std::move(obj));
}

json::value to_json(const std::vector<figure_report>& reports) {
  return to_json(reports, json::value(nullptr));
}

json::value to_json(const std::vector<figure_report>& reports,
                    json::value observability) {
  WSAN_REQUIRE(observability.is_null() || observability.is_object(),
               "observability section must be null or an object");
  json::object obj;
  obj["schema"] = "wsan-bench-report/1";
  obj["commit"] = build_commit();
  obj["observability"] = std::move(observability);
  // Optional "health" key: per-figure SLO verdicts, keyed by figure id.
  // Omitted entirely when no report carries one, so documents from
  // figures without SLOs are byte-identical to pre-health producers.
  json::object health;
  for (const auto& report : reports)
    if (!report.health.is_null()) health[report.figure] = report.health;
  if (!health.empty()) obj["health"] = std::move(health);
  json::array arr;
  for (const auto& report : reports) arr.push_back(to_json(report));
  obj["reports"] = std::move(arr);
  return json::value(std::move(obj));
}

figure_report report_from_json(const json::value& v) {
  WSAN_REQUIRE(v.is_object(), "report must be a JSON object");
  figure_report report;
  const auto get = [&](const char* key) -> const json::value& {
    const auto* member = v.find(key);
    WSAN_REQUIRE(member != nullptr,
                 std::string("report is missing key: ") + key);
    return *member;
  };
  report.figure = get("figure").as_string();
  report.title = get("title").as_string();
  report.seed = static_cast<std::uint64_t>(get("seed").as_int());
  report.jobs = static_cast<int>(get("jobs").as_int());
  report.trials = static_cast<int>(get("trials").as_int());
  report.wall_seconds = get("wall_seconds").as_double();
  for (const auto& [key, val] : get("parameters").as_object())
    report.parameters[key] = val.as_string();
  // Optional: documents predating the observability schema lack it.
  if (const auto* measured = v.find("measurement_keys"))
    for (const auto& key : measured->as_array())
      report.measurement_keys.push_back(key.as_string());
  if (const auto* series_file = v.find("series_file"))
    report.series_path = series_file->as_string();
  for (const auto& panel_json : get("panels").as_array()) {
    report_panel panel;
    const auto* name = panel_json.find("name");
    const auto* x_label = panel_json.find("x_label");
    const auto* points = panel_json.find("points");
    WSAN_REQUIRE(name && x_label && points, "panel is missing keys");
    panel.name = name->as_string();
    panel.x_label = x_label->as_string();
    for (const auto& point_json : points->as_array()) {
      report_point point;
      const auto* x = point_json.find("x");
      const auto* values = point_json.find("values");
      WSAN_REQUIRE(x && values, "point is missing keys");
      point.x = x->as_double();
      for (const auto& [series, value] : values->as_object())
        point.values[series] = value.as_double();
      panel.points.push_back(std::move(point));
    }
    report.panels.push_back(std::move(panel));
  }
  return report;
}

std::vector<figure_report> reports_from_json(const json::value& v) {
  WSAN_REQUIRE(v.is_object(), "report container must be a JSON object");
  const auto* reports = v.find("reports");
  WSAN_REQUIRE(reports != nullptr && reports->is_array(),
               "report container is missing the reports array");
  std::vector<figure_report> out;
  for (const auto& report : reports->as_array())
    out.push_back(report_from_json(report));
  // Rehydrate per-figure health verdicts from the optional container
  // key so a to_json round-trip preserves them.
  if (const auto* health = v.find("health"); health && health->is_object())
    for (auto& report : out)
      if (const auto* verdict = health->find(report.figure.c_str()))
        report.health = *verdict;
  return out;
}

namespace {

void check(bool ok, const std::string& where, const std::string& what,
           std::vector<std::string>& errors) {
  if (!ok) errors.push_back(where + ": " + what);
}

void validate_report(const json::value& v, const std::string& where,
                     std::vector<std::string>& errors) {
  if (!v.is_object()) {
    errors.push_back(where + ": expected object");
    return;
  }
  const auto require = [&](const char* key, const char* type,
                           bool (json::value::*pred)() const)
      -> const json::value* {
    const auto* member = v.find(key);
    if (member == nullptr) {
      errors.push_back(where + ": missing required key \"" + key + "\"");
      return nullptr;
    }
    if (!(member->*pred)()) {
      errors.push_back(where + "/" + key + ": expected " + type);
      return nullptr;
    }
    return member;
  };
  require("figure", "string", &json::value::is_string);
  require("title", "string", &json::value::is_string);
  require("seed", "integer", &json::value::is_int);
  require("jobs", "integer", &json::value::is_int);
  require("trials", "integer", &json::value::is_int);
  require("wall_seconds", "number", &json::value::is_number);
  if (const auto* params =
          require("parameters", "object", &json::value::is_object)) {
    for (const auto& [key, val] : params->as_object())
      check(val.is_string(), where + "/parameters/" + key,
            "expected string", errors);
  }
  if (const auto* measured = v.find("measurement_keys")) {
    if (!measured->is_array()) {
      errors.push_back(where + "/measurement_keys: expected array");
    } else {
      for (std::size_t i = 0; i < measured->as_array().size(); ++i)
        check(measured->as_array()[i].is_string(),
              where + "/measurement_keys/" + std::to_string(i),
              "expected string", errors);
    }
  }
  // Optional series-pointer key: the path of the series file the
  // figure wrote alongside the report.
  if (const auto* series_file = v.find("series_file"))
    check(series_file->is_string(), where + "/series_file",
          "expected string", errors);
  const auto* panels =
      require("panels", "array", &json::value::is_array);
  if (panels == nullptr) return;
  for (std::size_t pi = 0; pi < panels->as_array().size(); ++pi) {
    const auto& panel = panels->as_array()[pi];
    const std::string pwhere =
        where + "/panels/" + std::to_string(pi);
    if (!panel.is_object()) {
      errors.push_back(pwhere + ": expected object");
      continue;
    }
    const auto* name = panel.find("name");
    const auto* x_label = panel.find("x_label");
    const auto* points = panel.find("points");
    check(name != nullptr && name->is_string(), pwhere,
          "missing string \"name\"", errors);
    check(x_label != nullptr && x_label->is_string(), pwhere,
          "missing string \"x_label\"", errors);
    if (points == nullptr || !points->is_array()) {
      errors.push_back(pwhere + ": missing array \"points\"");
      continue;
    }
    for (std::size_t i = 0; i < points->as_array().size(); ++i) {
      const auto& point = points->as_array()[i];
      const std::string ptwhere = pwhere + "/points/" + std::to_string(i);
      if (!point.is_object()) {
        errors.push_back(ptwhere + ": expected object");
        continue;
      }
      const auto* x = point.find("x");
      const auto* values = point.find("values");
      check(x != nullptr && x->is_number(), ptwhere,
            "missing number \"x\"", errors);
      if (values == nullptr || !values->is_object()) {
        errors.push_back(ptwhere + ": missing object \"values\"");
        continue;
      }
      for (const auto& [series, value] : values->as_object())
        check(value.is_number(), ptwhere + "/values/" + series,
              "expected number", errors);
    }
  }
}

}  // namespace

std::vector<std::string> validate_reports_json(const json::value& v) {
  std::vector<std::string> errors;
  if (!v.is_object()) {
    errors.push_back("document: expected a JSON object");
    return errors;
  }
  const auto* schema = v.find("schema");
  if (schema == nullptr || !schema->is_string())
    errors.push_back("document: missing string \"schema\"");
  else
    check(schema->as_string() == "wsan-bench-report/1", "schema",
          "unknown schema \"" + schema->as_string() + "\"", errors);
  const auto* commit = v.find("commit");
  check(commit != nullptr && commit->is_string(), "document",
        "missing string \"commit\"", errors);
  // The key must exist even for obs-off runs — an absent key means the
  // producer predates the observability schema or the file is damaged.
  const auto* obs = v.find("observability");
  if (obs == nullptr)
    errors.push_back(
        "document: missing \"observability\" (must be null or object)");
  else
    check(obs->is_null() || obs->is_object(), "observability",
          "expected null or object", errors);
  // Optional "health" key: figure id -> SLO verdict object.
  if (const auto* health = v.find("health")) {
    if (!health->is_object()) {
      errors.push_back("health: expected object");
    } else {
      for (const auto& [figure, verdict] : health->as_object())
        check(verdict.is_object(), "health/" + figure, "expected object",
              errors);
    }
  }
  const auto* reports = v.find("reports");
  if (reports == nullptr || !reports->is_array()) {
    errors.push_back("document: missing array \"reports\"");
    return errors;
  }
  for (std::size_t i = 0; i < reports->as_array().size(); ++i)
    validate_report(reports->as_array()[i],
                    "reports/" + std::to_string(i), errors);
  return errors;
}

json::value science_payload(const json::value& container) {
  WSAN_REQUIRE(container.is_object(),
               "report container must be a JSON object");
  json::value payload = container;
  auto& obj = payload.as_object();
  obj["observability"] = json::value(nullptr);
  // Health verdicts and series pointers are telemetry and provenance,
  // not science: remove them like the observability section.
  obj.erase("health");
  if (const auto it = obj.find("reports");
      it != obj.end() && it->second.is_array()) {
    for (auto& report : it->second.as_array()) {
      if (!report.is_object()) continue;
      auto& robj = report.as_object();
      robj.erase("series_file");
      if (const auto wit = robj.find("wall_seconds"); wit != robj.end())
        wit->second = 0.0;
      // Worker count is run provenance, not science: the whole point
      // of the payload is that it agrees across --jobs values.
      if (const auto jit = robj.find("jobs"); jit != robj.end())
        jit->second = std::int64_t{0};
      std::set<std::string> measured;
      if (const auto mit = robj.find("measurement_keys");
          mit != robj.end() && mit->second.is_array())
        for (const auto& key : mit->second.as_array())
          if (key.is_string()) measured.insert(key.as_string());
      if (measured.empty()) continue;
      const auto pit = robj.find("panels");
      if (pit == robj.end() || !pit->second.is_array()) continue;
      for (auto& panel : pit->second.as_array()) {
        if (!panel.is_object()) continue;
        const auto pts = panel.as_object().find("points");
        if (pts == panel.as_object().end() ||
            !pts->second.is_array())
          continue;
        for (auto& point : pts->second.as_array()) {
          if (!point.is_object()) continue;
          const auto vit = point.as_object().find("values");
          if (vit == point.as_object().end() ||
              !vit->second.is_object())
            continue;
          for (auto& [series, value] : vit->second.as_object())
            if (measured.count(series) > 0) value = 0.0;
        }
      }
    }
  }
  return payload;
}

void write_reports_file(const std::vector<figure_report>& reports,
                        const std::string& path) {
  write_reports_file(reports, json::value(nullptr), path);
}

void write_reports_file(const std::vector<figure_report>& reports,
                        json::value observability,
                        const std::string& path) {
  std::ofstream out(path);
  WSAN_REQUIRE(out.good(), "cannot open for writing: " + path);
  json::write(to_json(reports, std::move(observability)), out);
  WSAN_REQUIRE(out.good(), "write failed: " + path);
}

}  // namespace wsan::exp
