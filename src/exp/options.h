// Shared command-line surface of the experiment harness.
//
// Every migrated bench binary (and `wsanctl bench`) accepts the same
// harness flags on top of its figure-specific ones:
//
//   --jobs N            worker threads (0 = all hardware threads)
//   --trials N          Monte-Carlo trials / flow sets per data point
//   --seed N            experiment seed (figure default when omitted)
//   --json FILE         also write the machine-readable report
//   --replay POINT:TRIAL  re-run one trial in isolation and print it
//   --metrics FILE      write an observability metrics snapshot
//   --trace FILE        stream structured events as JSON lines
//   --series FILE       write per-epoch series files (wsan-series/1
//                       JSONL); figures that have no epoch dimension
//                       ignore it
//   --fade-kernel K     derived-RNG kernel tier for simulator-backed
//                       figures: "oracle" (default, bit-identity) or
//                       "batched" (statistically equivalent, faster);
//                       figures without a simulator ignore it
#pragma once

#include <cstdint>
#include <string>

#include "common/cli.h"

namespace wsan::exp {

struct replay_target {
  int point = -1;
  int trial = -1;
  bool requested() const { return point >= 0; }
};

struct run_options {
  int jobs = 1;
  int trials = -1;  ///< -1: use the figure's default
  std::uint64_t seed = 0;
  bool seed_overridden = false;  ///< --seed was given explicitly
  std::string json_path;         ///< empty: no JSON output
  replay_target replay;
  std::string metrics_path;  ///< empty: no metrics snapshot file
  std::string trace_path;    ///< empty: no event trace file
  /// Base path for per-epoch series files ("" = none). A figure that
  /// emits several series inserts its id before the extension. Series
  /// are built from deterministic aggregates, so this does not enable
  /// the obs runtime.
  std::string series_path;
  /// Derived-RNG kernel tier ("oracle" or "batched", validated at
  /// parse time). Kept as a string so the experiment layer stays free
  /// of simulator types; simulator-backed figures map it onto
  /// sim::fade_kernel_kind. Defaults to the bit-identity oracle tier
  /// so every digest baseline is unchanged unless explicitly asked.
  std::string fade_kernel = "oracle";

  bool batched_fade_kernel() const { return fade_kernel == "batched"; }

  /// True when any observability output was asked for; the harness
  /// enables the obs runtime for the run exactly in this case.
  bool obs_requested() const {
    return !metrics_path.empty() || !trace_path.empty();
  }

  /// The series file a figure should write: the --series path with the
  /// figure id inserted before the extension ("s.jsonl" ->
  /// "s.churn.jsonl"), so --all runs never clobber one another. Empty
  /// when --series was not given.
  std::string series_file_for(const std::string& figure) const;

  /// The figure-specific trial count: the --trials value when given,
  /// otherwise the figure's default.
  int trials_or(int fallback) const {
    return trials >= 0 ? trials : fallback;
  }
  std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed_overridden ? seed : fallback;
  }
};

/// Parses the harness flags out of an already-constructed cli_args.
/// Figure-specific flags stay readable from the same cli_args.
/// Throws std::invalid_argument on a malformed --replay target.
run_options parse_run_options(const cli_args& args);

/// Parses "POINT:TRIAL" (both non-negative integers).
replay_target parse_replay_target(const std::string& spec);

}  // namespace wsan::exp
