#include "exp/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace wsan::exp::json {

bool value::as_bool() const {
  WSAN_REQUIRE(is_bool(), "JSON value is not a boolean");
  return std::get<bool>(v_);
}

std::int64_t value::as_int() const {
  WSAN_REQUIRE(is_int(), "JSON value is not an integer");
  return std::get<std::int64_t>(v_);
}

double value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  WSAN_REQUIRE(std::holds_alternative<double>(v_),
               "JSON value is not a number");
  return std::get<double>(v_);
}

const std::string& value::as_string() const {
  WSAN_REQUIRE(is_string(), "JSON value is not a string");
  return std::get<std::string>(v_);
}

const array& value::as_array() const {
  WSAN_REQUIRE(is_array(), "JSON value is not an array");
  return std::get<array>(v_);
}

const object& value::as_object() const {
  WSAN_REQUIRE(is_object(), "JSON value is not an object");
  return std::get<object>(v_);
}

array& value::as_array() {
  WSAN_REQUIRE(is_array(), "JSON value is not an array");
  return std::get<array>(v_);
}

object& value::as_object() {
  WSAN_REQUIRE(is_object(), "JSON value is not an object");
  return std::get<object>(v_);
}

const value* value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<object>(v_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

namespace {

void write_string(const std::string& s, std::ostream& os) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(double d, std::ostream& os) {
  WSAN_REQUIRE(std::isfinite(d), "JSON cannot represent NaN/Inf");
  // Shortest representation that parses back to the same double.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  os.write(buf, res.ptr - buf);
}

void write_indented(const value& v, std::ostream& os, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string pad1(static_cast<std::size_t>(depth + 1) * 2, ' ');
  if (v.is_null()) {
    os << "null";
  } else if (v.is_bool()) {
    os << (v.as_bool() ? "true" : "false");
  } else if (v.is_int()) {
    os << v.as_int();
  } else if (v.is_number()) {
    write_double(v.as_double(), os);
  } else if (v.is_string()) {
    write_string(v.as_string(), os);
  } else if (v.is_array()) {
    const auto& arr = v.as_array();
    if (arr.empty()) {
      os << "[]";
      return;
    }
    os << "[\n";
    for (std::size_t i = 0; i < arr.size(); ++i) {
      os << pad1;
      write_indented(arr[i], os, depth + 1);
      os << (i + 1 < arr.size() ? ",\n" : "\n");
    }
    os << pad << ']';
  } else {
    const auto& obj = v.as_object();
    if (obj.empty()) {
      os << "{}";
      return;
    }
    os << "{\n";
    std::size_t i = 0;
    for (const auto& [key, member] : obj) {
      os << pad1;
      write_string(key, os);
      os << ": ";
      write_indented(member, os, depth + 1);
      os << (++i < obj.size() ? ",\n" : "\n");
    }
    os << pad << '}';
  }
}

/// Recursive-descent parser over a string view with a cursor.
class parser {
 public:
  explicit parser(const std::string& text) : text_(text) {}

  value parse_document() {
    value v = parse_value();
    skip_ws();
    WSAN_REQUIRE(pos_ == text_.size(),
                 "trailing characters after JSON document at offset " +
                     std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return value(parse_string());
      case 't':
        if (consume_literal("true")) return value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return value(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  value parse_object() {
    expect('{');
    object obj;
    if (peek() == '}') {
      ++pos_;
      return value(std::move(obj));
    }
    for (;;) {
      const std::string key = (peek(), parse_quoted_string());
      expect(':');
      obj[key] = parse_value();
      const char c = peek();
      ++pos_;
      if (c == '}') return value(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  value parse_array() {
    expect('[');
    array arr;
    if (peek() == ']') {
      ++pos_;
      return value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return value(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() { return (peek(), parse_quoted_string()); }

  std::string parse_quoted_string() {
    if (text_[pos_] != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            const auto res = std::from_chars(
                text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
            if (res.ptr != text_.data() + pos_ + 4) fail("bad \\u escape");
            pos_ += 4;
            // The reports are ASCII; non-ASCII escapes are preserved
            // UTF-8-encoded for the BMP only.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = c == '.' || c == 'e' || c == 'E' ? true : is_double;
        ++pos_;
      } else {
        break;
      }
    }
    if (start == pos_) fail("expected a number");
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (!is_double) {
      std::int64_t i = 0;
      const auto res = std::from_chars(first, last, i);
      if (res.ec == std::errc() && res.ptr == last) return value(i);
    }
    double d = 0.0;
    const auto res = std::from_chars(first, last, d);
    if (res.ec != std::errc() || res.ptr != last) fail("bad number");
    return value(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

void write(const value& v, std::ostream& os) {
  write_indented(v, os, 0);
  os << '\n';
}

std::string to_string(const value& v) {
  std::ostringstream os;
  write(v, os);
  return os.str();
}

value parse(const std::string& text) {
  parser p(text);
  return p.parse_document();
}

}  // namespace wsan::exp::json
